#include "recovery/checkpoint_manager.h"

#include <algorithm>
#include <charconv>
#include <utility>

#include "faults/injector.h"
#include "recovery/snapshot.h"

namespace scaddar {

namespace {

constexpr std::string_view kFragMagic = "scaddar-ckptfrag-v1";

StatusOr<int64_t> ParseInt(std::string_view token) {
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return InvalidArgumentError("malformed integer in checkpoint fragment");
  }
  return value;
}

std::vector<std::string_view> SplitFields(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') {
      ++pos;
    }
    const size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') {
      ++pos;
    }
    if (pos > start) {
      tokens.push_back(line.substr(start, pos - start));
    }
  }
  return tokens;
}

/// One validated fragment, parsed out of its framed document.
struct FragmentView {
  int64_t set = 0;
  int level = 0;
  int64_t round = 0;
  int64_t index = 0;
  int64_t count = 0;
  bool parity = false;
  int64_t total_bytes = 0;
  std::string_view bytes;
};

/// Frames fragment `bytes`: a header line under the fragment checksum, so
/// a flipped byte anywhere — header or body — fails validation.
std::string FrameFragment(const CheckpointSetInfo& info, int64_t index,
                          int64_t count, bool parity, int64_t total_bytes,
                          std::string_view bytes) {
  std::string inner = "frag ";
  inner += std::to_string(info.id);
  inner += ' ';
  inner += std::to_string(info.level);
  inner += ' ';
  inner += std::to_string(info.round);
  inner += ' ';
  inner += std::to_string(index);
  inner += ' ';
  inner += std::to_string(count);
  inner += ' ';
  inner += parity ? '1' : '0';
  inner += ' ';
  inner += std::to_string(total_bytes);
  inner += '\n';
  inner += bytes;
  return WrapChecksummed(kFragMagic, inner);
}

StatusOr<FragmentView> ParseFragment(std::string_view document) {
  SCADDAR_ASSIGN_OR_RETURN(const std::string_view inner,
                           UnwrapChecksummed(kFragMagic, document));
  const size_t eol = inner.find('\n');
  if (eol == std::string_view::npos) {
    return InvalidArgumentError("checkpoint fragment has no header");
  }
  const std::vector<std::string_view> fields =
      SplitFields(inner.substr(0, eol));
  if (fields.size() != 8 || fields[0] != "frag") {
    return InvalidArgumentError("malformed checkpoint fragment header");
  }
  FragmentView view;
  SCADDAR_ASSIGN_OR_RETURN(view.set, ParseInt(fields[1]));
  SCADDAR_ASSIGN_OR_RETURN(const int64_t level, ParseInt(fields[2]));
  SCADDAR_ASSIGN_OR_RETURN(view.round, ParseInt(fields[3]));
  SCADDAR_ASSIGN_OR_RETURN(view.index, ParseInt(fields[4]));
  SCADDAR_ASSIGN_OR_RETURN(view.count, ParseInt(fields[5]));
  SCADDAR_ASSIGN_OR_RETURN(const int64_t parity, ParseInt(fields[6]));
  SCADDAR_ASSIGN_OR_RETURN(view.total_bytes, ParseInt(fields[7]));
  view.level = static_cast<int>(level);
  view.parity = parity != 0;
  view.bytes = inner.substr(eol + 1);
  return view;
}

}  // namespace

StatusOr<CheckpointRedundancy> ParseCheckpointRedundancy(
    std::string_view token) {
  if (token == "partner") {
    return CheckpointRedundancy::kPartner;
  }
  if (token == "xor") {
    return CheckpointRedundancy::kXor;
  }
  return InvalidArgumentError(
      "unrecognized checkpoint redundancy (want partner|xor)");
}

CheckpointManager::CheckpointManager(CheckpointOptions options)
    : options_(options),
      locations_(static_cast<size_t>(std::max<int64_t>(
          options.num_locations, 2))) {
  options_.num_locations = static_cast<int64_t>(locations_.size());
}

void CheckpointManager::PutFragment(SetRecord& record, int64_t location,
                                    int64_t index, int64_t count,
                                    std::string_view bytes, bool parity,
                                    FaultInjector* injector) {
  std::string name = "set" + std::to_string(record.info.id) +
                     (parity ? ".parity" : ".frag" + std::to_string(index));
  std::string document = FrameFragment(record.info, index, count, parity,
                                       record.payload_bytes, bytes);
  stats_.bytes_written += static_cast<int64_t>(document.size());
  auto& slot = locations_[static_cast<size_t>(location)][name];
  slot = std::move(document);
  if (injector != nullptr && injector->CorruptSnapshotAt(location)) {
    // Injected silent media corruption: flip one byte mid-document. The
    // load path must reject this fragment by checksum, never trust it.
    slot[slot.size() / 2] ^= 0x40;
    ++stats_.snapshot_corruptions;
  }
  record.fragments.push_back(Fragment{location, std::move(name)});
}

StatusOr<CheckpointSetInfo> CheckpointManager::Write(std::string_view payload,
                                                     int level, int64_t round,
                                                     FaultInjector* injector) {
  if (level != 1 && level != 2) {
    return InvalidArgumentError("checkpoint level must be 1 or 2");
  }
  if (injector != nullptr) {
    injector->BeginSnapshot();
    if (injector->CrashAtSnapshot(SnapshotPhase::kCaptured)) {
      ++stats_.snapshot_crashes;
      return UnavailableError("injected kill before any snapshot write");
    }
  }
  const int64_t num_locations = this->num_locations();
  SetRecord record;
  record.info.id = next_set_++;
  record.info.level = level;
  record.info.round = round;
  record.redundancy = options_.redundancy;
  record.payload_bytes = static_cast<int64_t>(payload.size());
  const int64_t home = record.info.id % num_locations;

  // The set record is appended *before* its fragments land — the manifest
  // intent. A kill mid-write leaves a recorded but torn set, exactly the
  // state the load path must detect and skip.
  sets_.push_back(std::move(record));
  SetRecord& live = sets_.back();

  const auto crash_at = [&](SnapshotPhase phase) {
    if (injector != nullptr && injector->CrashAtSnapshot(phase)) {
      ++stats_.snapshot_crashes;
      return true;
    }
    return false;
  };

  if (level == 1) {
    live.data_fragments = 1;
    PutFragment(live, home, 0, 1, payload, /*parity=*/false, injector);
    if (crash_at(SnapshotPhase::kPrimaryWritten)) {
      return UnavailableError("injected kill after primary snapshot write");
    }
    ++stats_.l1_written;
  } else if (options_.redundancy == CheckpointRedundancy::kPartner) {
    live.data_fragments = 2;
    PutFragment(live, home, 0, 2, payload, /*parity=*/false, injector);
    if (crash_at(SnapshotPhase::kPrimaryWritten)) {
      return UnavailableError("injected kill after primary snapshot write");
    }
    PutFragment(live, (home + 1) % num_locations, 1, 2, payload,
                /*parity=*/false, injector);
    ++stats_.l2_written;
  } else {
    // XOR across locations: num_locations - 1 data pieces + one parity,
    // each on its own location. piece_len covers the payload with the last
    // piece possibly short; parity is the XOR of zero-padded pieces.
    const int64_t pieces = num_locations - 1;
    const int64_t total = live.payload_bytes;
    const int64_t piece_len = std::max<int64_t>((total + pieces - 1) / pieces,
                                                1);
    live.data_fragments = pieces;
    std::string parity(static_cast<size_t>(piece_len), '\0');
    for (int64_t i = 0; i < pieces; ++i) {
      const int64_t begin = std::min(i * piece_len, total);
      const int64_t end = std::min(begin + piece_len, total);
      const std::string_view piece =
          payload.substr(static_cast<size_t>(begin),
                         static_cast<size_t>(end - begin));
      for (int64_t b = 0; b < end - begin; ++b) {
        parity[static_cast<size_t>(b)] ^= piece[static_cast<size_t>(b)];
      }
      PutFragment(live, (home + i) % num_locations, i, pieces + 1, piece,
                  /*parity=*/false, injector);
      if (i == 0 && crash_at(SnapshotPhase::kPrimaryWritten)) {
        return UnavailableError("injected kill after primary snapshot write");
      }
    }
    PutFragment(live, (home + pieces) % num_locations, pieces, pieces + 1,
                parity, /*parity=*/true, injector);
    ++stats_.l2_written;
  }
  if (crash_at(SnapshotPhase::kSetComplete)) {
    // The set is fully durable; the restart simply resumes from it.
    return UnavailableError("injected kill after snapshot set completed");
  }
  return live.info;
}

StatusOr<std::string> CheckpointManager::Assemble(const SetRecord& record,
                                                  bool* rebuilt_from_parity) {
  *rebuilt_from_parity = false;
  // Collect whatever fragments still exist and validate.
  std::vector<StatusOr<FragmentView>> views;
  views.reserve(record.fragments.size());
  for (const Fragment& fragment : record.fragments) {
    const auto& store = locations_[static_cast<size_t>(fragment.location)];
    const auto it = store.find(fragment.name);
    if (it == store.end()) {
      views.push_back(NotFoundError("checkpoint fragment missing"));
      continue;
    }
    StatusOr<FragmentView> view = ParseFragment(it->second);
    if (view.ok() &&
        (view->set != record.info.id ||
         view->total_bytes != record.payload_bytes)) {
      view = InvalidArgumentError("checkpoint fragment identity mismatch");
    }
    views.push_back(std::move(view));
  }

  if (record.info.level == 1 ||
      record.redundancy == CheckpointRedundancy::kPartner) {
    // Any valid full copy restores the set.
    const int64_t expected =
        record.info.level == 1 ? 1 : record.data_fragments;
    if (static_cast<int64_t>(record.fragments.size()) < expected) {
      return InvalidArgumentError("checkpoint set torn (write interrupted)");
    }
    for (size_t i = 0; i < views.size(); ++i) {
      if (!views[i].ok()) {
        continue;
      }
      if (record.info.level == 2 && i > 0) {
        *rebuilt_from_parity = true;  // Primary lost; partner copy used.
      }
      return std::string(views[i]->bytes);
    }
    return InvalidArgumentError("no valid copy of checkpoint set");
  }

  // XOR reconstruction. All pieces plus parity must have been written; a
  // torn set (kill mid-write) is rejected outright.
  const int64_t pieces = record.data_fragments;
  if (static_cast<int64_t>(record.fragments.size()) != pieces + 1) {
    return InvalidArgumentError("checkpoint set torn (write interrupted)");
  }
  const int64_t total = record.payload_bytes;
  const int64_t piece_len = std::max<int64_t>((total + pieces - 1) / pieces,
                                              1);
  const auto expected_len = [&](int64_t i) {
    const int64_t begin = std::min(i * piece_len, total);
    return std::min(begin + piece_len, total) - begin;
  };
  int64_t missing = -1;
  for (int64_t i = 0; i < pieces; ++i) {
    const auto& view = views[static_cast<size_t>(i)];
    const bool valid =
        view.ok() &&
        static_cast<int64_t>(view->bytes.size()) == expected_len(i);
    if (valid) {
      continue;
    }
    if (missing >= 0) {
      return InvalidArgumentError(
          "checkpoint set lost more than one fragment");
    }
    missing = i;
  }
  std::string payload;
  payload.reserve(static_cast<size_t>(total));
  for (int64_t i = 0; i < pieces; ++i) {
    if (i != missing) {
      payload.append(views[static_cast<size_t>(i)]->bytes);
      continue;
    }
    // Rebuild the lost piece: parity XOR every surviving piece, padded to
    // the parity length, then trimmed to the piece's real extent.
    const auto& parity = views[static_cast<size_t>(pieces)];
    if (!parity.ok() ||
        static_cast<int64_t>(parity->bytes.size()) != piece_len) {
      return InvalidArgumentError(
          "checkpoint parity fragment invalid; cannot rebuild");
    }
    std::string rebuilt(parity->bytes);
    for (int64_t j = 0; j < pieces; ++j) {
      if (j == missing) {
        continue;
      }
      const std::string_view piece = views[static_cast<size_t>(j)]->bytes;
      for (size_t b = 0; b < piece.size(); ++b) {
        rebuilt[b] ^= piece[b];
      }
    }
    rebuilt.resize(static_cast<size_t>(expected_len(i)));
    payload += rebuilt;
    ++stats_.parity_rebuilds;
    *rebuilt_from_parity = true;
  }
  if (static_cast<int64_t>(payload.size()) != total) {
    return InvalidArgumentError("checkpoint payload size mismatch");
  }
  return payload;
}

StatusOr<LoadedCheckpoint> CheckpointManager::LoadNewestValid() {
  int64_t rejected = 0;
  for (auto it = sets_.rbegin(); it != sets_.rend(); ++it) {
    bool rebuilt = false;
    StatusOr<std::string> payload = Assemble(*it, &rebuilt);
    if (!payload.ok()) {
      ++rejected;
      ++stats_.sets_rejected;
      continue;
    }
    LoadedCheckpoint loaded;
    loaded.info = it->info;
    loaded.payload = std::move(payload).value();
    loaded.sets_rejected = rejected;
    loaded.rebuilt_from_parity = rebuilt;
    return loaded;
  }
  return NotFoundError("no valid checkpoint set");
}

Status CheckpointManager::DropLocation(int64_t location) {
  if (location < 0 || location >= num_locations()) {
    return InvalidArgumentError("checkpoint location out of range");
  }
  locations_[static_cast<size_t>(location)].clear();
  return OkStatus();
}

Status CheckpointManager::CorruptNewestAt(int64_t location) {
  if (location < 0 || location >= num_locations()) {
    return InvalidArgumentError("checkpoint location out of range");
  }
  auto& store = locations_[static_cast<size_t>(location)];
  for (auto it = sets_.rbegin(); it != sets_.rend(); ++it) {
    for (const Fragment& fragment : it->fragments) {
      if (fragment.location != location) {
        continue;
      }
      const auto doc = store.find(fragment.name);
      if (doc == store.end()) {
        continue;
      }
      doc->second[doc->second.size() / 2] ^= 0x40;
      return OkStatus();
    }
  }
  return NotFoundError("no checkpoint fragment at that location");
}

Status CheckpointManager::DropNewestSet() {
  if (sets_.empty()) {
    return NotFoundError("no checkpoint set to drop");
  }
  for (const Fragment& fragment : sets_.back().fragments) {
    locations_[static_cast<size_t>(fragment.location)].erase(fragment.name);
  }
  sets_.pop_back();
  return OkStatus();
}

}  // namespace scaddar
