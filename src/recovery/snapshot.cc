#include "recovery/snapshot.h"

#include <charconv>
#include <cstdio>

namespace scaddar {

namespace {

constexpr std::string_view kServerMagic = "scaddar-ckpt-v1";
constexpr std::string_view kClusterMagic = "scaddar-cluster-ckpt-v1";

StatusOr<int64_t> ParseInt(std::string_view token) {
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return InvalidArgumentError("malformed integer in snapshot");
  }
  return value;
}

StatusOr<uint64_t> ParseHex(std::string_view token) {
  uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(
      token.data(), token.data() + token.size(), value, 16);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return InvalidArgumentError("malformed checksum in snapshot");
  }
  return value;
}

void AppendInt(std::string& out, int64_t value) {
  char buffer[24];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  (void)ec;
  out.append(buffer, ptr);
}

StatusOr<double> ParseFloat(std::string_view token) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return InvalidArgumentError("malformed float in snapshot");
  }
  return value;
}

void AppendFloat(std::string& out, double value) {
  // max_digits10 round-trips every finite double exactly.
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

/// Cursor over a payload: line-oriented fields plus exact-byte blobs for
/// nested documents (op log, journal, per-shard snapshots) whose content is
/// itself multi-line.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : rest_(payload) {}

  bool done() const { return rest_.empty(); }

  /// Next line, without the trailing newline.
  std::string_view NextLine() {
    const size_t eol = rest_.find('\n');
    const std::string_view line = rest_.substr(0, eol);
    rest_ = eol == std::string_view::npos ? std::string_view()
                                          : rest_.substr(eol + 1);
    return line;
  }

  /// Exactly `bytes` raw bytes followed by one newline.
  StatusOr<std::string_view> NextBlob(int64_t bytes) {
    if (bytes < 0 || static_cast<size_t>(bytes) + 1 > rest_.size()) {
      return InvalidArgumentError("snapshot blob truncated");
    }
    const std::string_view blob = rest_.substr(0, static_cast<size_t>(bytes));
    if (rest_[static_cast<size_t>(bytes)] != '\n') {
      return InvalidArgumentError("snapshot blob missing terminator");
    }
    rest_ = rest_.substr(static_cast<size_t>(bytes) + 1);
    return blob;
  }

 private:
  std::string_view rest_;
};

/// In-place integer cursor for the hot `object` row lines: from_chars over
/// the raw bytes, no per-token string_view vector. A large snapshot is
/// dominated by row digits, so decode speed here is restart speed.
class IntCursor {
 public:
  explicit IntCursor(std::string_view text) : rest_(text) {}

  bool done() {
    SkipSpaces();
    return rest_.empty();
  }

  StatusOr<int64_t> Next() {
    SkipSpaces();
    int64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(rest_.data(), rest_.data() + rest_.size(), value);
    if (ec != std::errc() || ptr == rest_.data()) {
      return InvalidArgumentError("malformed integer in snapshot");
    }
    rest_ = rest_.substr(static_cast<size_t>(ptr - rest_.data()));
    if (!rest_.empty() && rest_.front() != ' ') {
      return InvalidArgumentError("malformed integer in snapshot");
    }
    return value;
  }

  std::string_view rest() const { return rest_; }

 private:
  void SkipSpaces() {
    while (!rest_.empty() && rest_.front() == ' ') {
      rest_.remove_prefix(1);
    }
  }

  std::string_view rest_;
};

/// `object <id> <blocks> <weight> <generation> <epoch> <len> <disk>...`
StatusOr<SnapshotObject> ParseObjectLine(std::string_view body) {
  IntCursor cursor(body);
  SnapshotObject object;
  SCADDAR_ASSIGN_OR_RETURN(object.id, cursor.Next());
  SCADDAR_ASSIGN_OR_RETURN(object.num_blocks, cursor.Next());
  SCADDAR_ASSIGN_OR_RETURN(object.weight, cursor.Next());
  SCADDAR_ASSIGN_OR_RETURN(object.generation, cursor.Next());
  SCADDAR_ASSIGN_OR_RETURN(object.epoch_added, cursor.Next());
  SCADDAR_ASSIGN_OR_RETURN(const int64_t row_len, cursor.Next());
  if (row_len < 0) {
    return InvalidArgumentError("object row length mismatch in snapshot");
  }
  // The row loop is the decode hot path — one integer per block in the
  // snapshot — so it parses raw, without a StatusOr round-trip per token.
  object.row.resize(static_cast<size_t>(row_len));
  const char* p = cursor.rest().data();
  const char* const end = p + cursor.rest().size();
  for (int64_t i = 0; i < row_len; ++i) {
    while (p < end && *p == ' ') {
      ++p;
    }
    int64_t disk = 0;
    const auto [next, ec] = std::from_chars(p, end, disk);
    if (ec != std::errc() || next == p ||
        (next != end && *next != ' ')) {
      return InvalidArgumentError("object row length mismatch in snapshot");
    }
    object.row[static_cast<size_t>(i)] = disk;
    p = next;
  }
  while (p < end && *p == ' ') {
    ++p;
  }
  if (p != end) {
    return InvalidArgumentError("object row length mismatch in snapshot");
  }
  return object;
}

std::vector<std::string_view> SplitFields(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') {
      ++pos;
    }
    const size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') {
      ++pos;
    }
    if (pos > start) {
      tokens.push_back(line.substr(start, pos - start));
    }
  }
  return tokens;
}

void AppendBlob(std::string& out, std::string_view key,
                std::string_view blob) {
  out += key;
  out += ' ';
  AppendInt(out, static_cast<int64_t>(blob.size()));
  out += '\n';
  out += blob;
  out += '\n';
}

}  // namespace

uint64_t SnapshotChecksum(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis.
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;  // FNV prime.
  }
  return hash;
}

std::string WrapChecksummed(std::string_view magic, std::string_view payload) {
  std::string out(magic);
  out += ' ';
  AppendInt(out, static_cast<int64_t>(payload.size()));
  char sum[24];
  std::snprintf(sum, sizeof(sum), " %016llx\n",
                static_cast<unsigned long long>(SnapshotChecksum(payload)));
  out += sum;
  out += payload;
  return out;
}

StatusOr<std::string_view> UnwrapChecksummed(std::string_view magic,
                                             std::string_view document) {
  const size_t eol = document.find('\n');
  if (eol == std::string_view::npos) {
    return InvalidArgumentError("snapshot document has no header line");
  }
  const std::vector<std::string_view> fields =
      SplitFields(document.substr(0, eol));
  if (fields.size() != 3 || fields[0] != magic) {
    return InvalidArgumentError("unrecognized snapshot header");
  }
  SCADDAR_ASSIGN_OR_RETURN(const int64_t bytes, ParseInt(fields[1]));
  SCADDAR_ASSIGN_OR_RETURN(const uint64_t expected, ParseHex(fields[2]));
  const std::string_view payload = document.substr(eol + 1);
  if (static_cast<int64_t>(payload.size()) != bytes) {
    return InvalidArgumentError("snapshot document torn (length mismatch)");
  }
  if (SnapshotChecksum(payload) != expected) {
    return InvalidArgumentError("snapshot checksum mismatch");
  }
  return payload;
}

std::string EncodeServerSnapshot(const ServerSnapshot& snapshot) {
  std::string payload;
  payload.reserve(256 + snapshot.oplog.size() + snapshot.journal.size() +
                  snapshot.objects.size() * 64);
  payload += "policy ";
  payload += snapshot.policy;
  payload += '\n';
  payload += "round ";
  AppendInt(payload, snapshot.round);
  payload += "\nnextstream ";
  AppendInt(payload, snapshot.next_stream_id);
  payload += "\ncompleted ";
  AppendInt(payload, snapshot.completed_streams);
  payload += "\nserved ";
  AppendInt(payload, snapshot.total_served);
  payload += "\nhiccups ";
  AppendInt(payload, snapshot.total_hiccups);
  payload += "\nconverged ";
  AppendInt(payload, snapshot.converged ? 1 : 0);
  payload += "\nlatencies ";
  AppendInt(payload, static_cast<int64_t>(snapshot.startup_latencies.size()));
  for (const int64_t latency : snapshot.startup_latencies) {
    payload += ' ';
    AppendInt(payload, latency);
  }
  payload += '\n';
  if (snapshot.governor_bits > 0) {
    payload += "governor ";
    AppendInt(payload, snapshot.governor_bits);
    payload += ' ';
    AppendFloat(payload, snapshot.governor_eps);
    payload += ' ';
    AppendFloat(payload, snapshot.reorg_cov_threshold);
    payload += ' ';
    AppendInt(payload, snapshot.reorg_check_every);
    payload += ' ';
    AppendInt(payload, snapshot.auto_reorg ? 1 : 0);
    payload += '\n';
  }
  for (const ReorgTrigger& trigger : snapshot.reorg_triggers) {
    payload += "trigger ";
    AppendInt(payload, trigger.round);
    payload += ' ';
    AppendInt(payload, trigger.reason == ReorgReason::kCov ? 1 : 0);
    payload += ' ';
    AppendFloat(payload, trigger.value);
    payload += '\n';
  }
  AppendBlob(payload, "oplog", snapshot.oplog);
  AppendBlob(payload, "journal", snapshot.journal);
  for (const SnapshotObject& object : snapshot.objects) {
    payload += "object ";
    AppendInt(payload, object.id);
    payload += ' ';
    AppendInt(payload, object.num_blocks);
    payload += ' ';
    AppendInt(payload, object.weight);
    payload += ' ';
    AppendInt(payload, object.generation);
    payload += ' ';
    AppendInt(payload, object.epoch_added);
    payload += ' ';
    AppendInt(payload, static_cast<int64_t>(object.row.size()));
    for (const PhysicalDiskId disk : object.row) {
      payload += ' ';
      AppendInt(payload, disk);
    }
    payload += '\n';
  }
  for (const auto& [ref, disk] : snapshot.staged) {
    payload += "staged ";
    AppendInt(payload, ref.object);
    payload += ' ';
    AppendInt(payload, ref.block);
    payload += ' ';
    AppendInt(payload, disk);
    payload += '\n';
  }
  for (const SnapshotStream& stream : snapshot.streams) {
    payload += "stream ";
    AppendInt(payload, stream.id);
    payload += ' ';
    AppendInt(payload, stream.object);
    payload += ' ';
    AppendInt(payload, stream.next_block);
    payload += ' ';
    AppendInt(payload, stream.rate);
    payload += ' ';
    AppendInt(payload, stream.start_round);
    payload += ' ';
    AppendInt(payload, stream.hiccups);
    payload += ' ';
    AppendInt(payload, stream.paused ? 1 : 0);
    payload += ' ';
    AppendInt(payload, stream.playback_started ? 1 : 0);
    payload += '\n';
  }
  return WrapChecksummed(kServerMagic, payload);
}

StatusOr<ServerSnapshot> DecodeServerSnapshot(std::string_view document) {
  SCADDAR_ASSIGN_OR_RETURN(const std::string_view payload,
                           UnwrapChecksummed(kServerMagic, document));
  ServerSnapshot snapshot;
  bool policy_seen = false;
  bool oplog_seen = false;
  bool journal_seen = false;
  PayloadReader reader(payload);
  while (!reader.done()) {
    const std::string_view line = reader.NextLine();
    if (line.starts_with("object ")) {
      // Row lines carry one token per block — parse them without the
      // generic tokenizer so large snapshots decode at restart speed.
      SCADDAR_ASSIGN_OR_RETURN(SnapshotObject object,
                               ParseObjectLine(line.substr(7)));
      snapshot.objects.push_back(std::move(object));
      continue;
    }
    const std::vector<std::string_view> fields = SplitFields(line);
    if (fields.empty()) {
      continue;
    }
    const std::string_view key = fields[0];
    if (key == "policy" && fields.size() == 2) {
      snapshot.policy = std::string(fields[1]);
      policy_seen = true;
    } else if (key == "round" && fields.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(snapshot.round, ParseInt(fields[1]));
    } else if (key == "nextstream" && fields.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(snapshot.next_stream_id, ParseInt(fields[1]));
    } else if (key == "completed" && fields.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(snapshot.completed_streams,
                               ParseInt(fields[1]));
    } else if (key == "served" && fields.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(snapshot.total_served, ParseInt(fields[1]));
    } else if (key == "hiccups" && fields.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(snapshot.total_hiccups, ParseInt(fields[1]));
    } else if (key == "converged" && fields.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t converged, ParseInt(fields[1]));
      snapshot.converged = converged != 0;
    } else if (key == "governor" && fields.size() == 6) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t bits, ParseInt(fields[1]));
      SCADDAR_ASSIGN_OR_RETURN(snapshot.governor_eps, ParseFloat(fields[2]));
      SCADDAR_ASSIGN_OR_RETURN(snapshot.reorg_cov_threshold,
                               ParseFloat(fields[3]));
      SCADDAR_ASSIGN_OR_RETURN(snapshot.reorg_check_every,
                               ParseInt(fields[4]));
      SCADDAR_ASSIGN_OR_RETURN(const int64_t auto_on, ParseInt(fields[5]));
      snapshot.governor_bits = static_cast<int>(bits);
      snapshot.auto_reorg = auto_on != 0;
    } else if (key == "trigger" && fields.size() == 4) {
      ReorgTrigger trigger;
      SCADDAR_ASSIGN_OR_RETURN(trigger.round, ParseInt(fields[1]));
      SCADDAR_ASSIGN_OR_RETURN(const int64_t reason, ParseInt(fields[2]));
      SCADDAR_ASSIGN_OR_RETURN(trigger.value, ParseFloat(fields[3]));
      trigger.reason = reason != 0 ? ReorgReason::kCov : ReorgReason::kBudget;
      snapshot.reorg_triggers.push_back(trigger);
    } else if (key == "latencies" && fields.size() >= 2) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t count, ParseInt(fields[1]));
      if (count != static_cast<int64_t>(fields.size()) - 2) {
        return InvalidArgumentError("latency count mismatch in snapshot");
      }
      snapshot.startup_latencies.reserve(static_cast<size_t>(count));
      for (size_t f = 2; f < fields.size(); ++f) {
        SCADDAR_ASSIGN_OR_RETURN(const int64_t latency, ParseInt(fields[f]));
        snapshot.startup_latencies.push_back(latency);
      }
    } else if (key == "oplog" && fields.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t bytes, ParseInt(fields[1]));
      SCADDAR_ASSIGN_OR_RETURN(const std::string_view blob,
                               reader.NextBlob(bytes));
      snapshot.oplog = std::string(blob);
      oplog_seen = true;
    } else if (key == "journal" && fields.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t bytes, ParseInt(fields[1]));
      SCADDAR_ASSIGN_OR_RETURN(const std::string_view blob,
                               reader.NextBlob(bytes));
      snapshot.journal = std::string(blob);
      journal_seen = true;
    } else if (key == "staged" && fields.size() == 4) {
      BlockRef ref;
      SCADDAR_ASSIGN_OR_RETURN(ref.object, ParseInt(fields[1]));
      SCADDAR_ASSIGN_OR_RETURN(ref.block, ParseInt(fields[2]));
      SCADDAR_ASSIGN_OR_RETURN(const int64_t disk, ParseInt(fields[3]));
      snapshot.staged.emplace_back(ref, disk);
    } else if (key == "stream" && fields.size() == 9) {
      SnapshotStream stream;
      SCADDAR_ASSIGN_OR_RETURN(stream.id, ParseInt(fields[1]));
      SCADDAR_ASSIGN_OR_RETURN(stream.object, ParseInt(fields[2]));
      SCADDAR_ASSIGN_OR_RETURN(stream.next_block, ParseInt(fields[3]));
      SCADDAR_ASSIGN_OR_RETURN(stream.rate, ParseInt(fields[4]));
      SCADDAR_ASSIGN_OR_RETURN(stream.start_round, ParseInt(fields[5]));
      SCADDAR_ASSIGN_OR_RETURN(stream.hiccups, ParseInt(fields[6]));
      SCADDAR_ASSIGN_OR_RETURN(const int64_t paused, ParseInt(fields[7]));
      SCADDAR_ASSIGN_OR_RETURN(const int64_t started, ParseInt(fields[8]));
      stream.paused = paused != 0;
      stream.playback_started = started != 0;
      snapshot.streams.push_back(stream);
    } else {
      return InvalidArgumentError("unrecognized snapshot line");
    }
  }
  if (!policy_seen || !oplog_seen || !journal_seen) {
    return InvalidArgumentError("incomplete server snapshot");
  }
  return snapshot;
}

std::string EncodeClusterSnapshot(const ClusterSnapshot& snapshot) {
  std::string payload;
  payload += "round ";
  AppendInt(payload, snapshot.round);
  payload += "\nhandoffrejects ";
  AppendInt(payload, snapshot.handoff_rejects);
  payload += "\nmap ";
  AppendInt(payload, snapshot.next_member);
  payload += ' ';
  AppendInt(payload, snapshot.map_epoch);
  payload += ' ';
  AppendInt(payload, static_cast<int64_t>(snapshot.seats.size()));
  for (const int seat : snapshot.seats) {
    payload += ' ';
    AppendInt(payload, seat);
  }
  payload += '\n';
  for (const auto& [object, owner] : snapshot.owners) {
    payload += "owner ";
    AppendInt(payload, object);
    payload += ' ';
    AppendInt(payload, owner);
    payload += '\n';
  }
  for (const ClusterSnapshotShard& shard : snapshot.shards) {
    payload += "shard ";
    AppendInt(payload, shard.member);
    payload += ' ';
    AppendInt(payload, shard.retiring ? 1 : 0);
    payload += ' ';
    AppendInt(payload, static_cast<int64_t>(shard.document.size()));
    payload += '\n';
    payload += shard.document;
    payload += '\n';
  }
  return WrapChecksummed(kClusterMagic, payload);
}

StatusOr<ClusterSnapshot> DecodeClusterSnapshot(std::string_view document) {
  SCADDAR_ASSIGN_OR_RETURN(const std::string_view payload,
                           UnwrapChecksummed(kClusterMagic, document));
  ClusterSnapshot snapshot;
  bool map_seen = false;
  PayloadReader reader(payload);
  while (!reader.done()) {
    const std::string_view line = reader.NextLine();
    const std::vector<std::string_view> fields = SplitFields(line);
    if (fields.empty()) {
      continue;
    }
    const std::string_view key = fields[0];
    if (key == "round" && fields.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(snapshot.round, ParseInt(fields[1]));
    } else if (key == "handoffrejects" && fields.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(snapshot.handoff_rejects, ParseInt(fields[1]));
    } else if (key == "map" && fields.size() >= 4) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t next_member, ParseInt(fields[1]));
      SCADDAR_ASSIGN_OR_RETURN(snapshot.map_epoch, ParseInt(fields[2]));
      SCADDAR_ASSIGN_OR_RETURN(const int64_t seats, ParseInt(fields[3]));
      if (seats != static_cast<int64_t>(fields.size()) - 4) {
        return InvalidArgumentError("seat count mismatch in cluster snapshot");
      }
      snapshot.next_member = static_cast<int>(next_member);
      for (size_t f = 4; f < fields.size(); ++f) {
        SCADDAR_ASSIGN_OR_RETURN(const int64_t seat, ParseInt(fields[f]));
        snapshot.seats.push_back(static_cast<int>(seat));
      }
      map_seen = true;
    } else if (key == "owner" && fields.size() == 3) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t object, ParseInt(fields[1]));
      SCADDAR_ASSIGN_OR_RETURN(const int64_t owner, ParseInt(fields[2]));
      snapshot.owners.emplace_back(object, static_cast<int>(owner));
    } else if (key == "shard" && fields.size() == 4) {
      ClusterSnapshotShard shard;
      SCADDAR_ASSIGN_OR_RETURN(const int64_t member, ParseInt(fields[1]));
      SCADDAR_ASSIGN_OR_RETURN(const int64_t retiring, ParseInt(fields[2]));
      SCADDAR_ASSIGN_OR_RETURN(const int64_t bytes, ParseInt(fields[3]));
      SCADDAR_ASSIGN_OR_RETURN(const std::string_view blob,
                               reader.NextBlob(bytes));
      shard.member = static_cast<int>(member);
      shard.retiring = retiring != 0;
      shard.document = std::string(blob);
      snapshot.shards.push_back(std::move(shard));
    } else {
      return InvalidArgumentError("unrecognized cluster snapshot line");
    }
  }
  if (!map_seen) {
    return InvalidArgumentError("incomplete cluster snapshot");
  }
  return snapshot;
}

}  // namespace scaddar
