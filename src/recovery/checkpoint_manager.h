#ifndef SCADDAR_RECOVERY_CHECKPOINT_MANAGER_H_
#define SCADDAR_RECOVERY_CHECKPOINT_MANAGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/statusor.h"

namespace scaddar {

class FaultInjector;

/// How a level-2 checkpoint set survives the loss of one snapshot location
/// (the SCR multi-level idea: frequent cheap local snapshots, rarer
/// redundant sets that survive whole-disk loss).
enum class CheckpointRedundancy {
  /// The full document is written to two distinct locations; either copy
  /// alone restores the set.
  kPartner,
  /// The document is split into `num_locations - 1` data fragments plus one
  /// XOR parity fragment, one per location; any single lost or corrupted
  /// fragment is reconstructed from the others.
  kXor,
};

/// "partner" | "xor" -> enum; InvalidArgument otherwise.
StatusOr<CheckpointRedundancy> ParseCheckpointRedundancy(
    std::string_view token);

struct CheckpointOptions {
  /// Independent snapshot locations (distinct failure domains — disk
  /// groups, in a real deployment). >= 2; >= 3 for XOR to beat partner.
  int64_t num_locations = 4;
  /// Scheme used by level-2 sets (level-1 sets are always one local copy).
  CheckpointRedundancy redundancy = CheckpointRedundancy::kPartner;
};

/// Identity of one written checkpoint set.
struct CheckpointSetInfo {
  int64_t id = 0;     // Monotonic set number (newest = largest).
  int level = 1;      // 1 = single local copy, 2 = redundant set.
  int64_t round = 0;  // Server round at capture.
};

/// Lifetime counters (bytes are fragment bytes, redundancy included).
struct CheckpointStats {
  int64_t l1_written = 0;
  int64_t l2_written = 0;
  int64_t bytes_written = 0;
  int64_t sets_rejected = 0;       // Torn/corrupt sets skipped during load.
  int64_t parity_rebuilds = 0;     // XOR reconstructions performed.
  int64_t snapshot_crashes = 0;    // Injected kills mid-write.
  int64_t snapshot_corruptions = 0;  // Injected fragment corruptions.
};

/// A successfully loaded checkpoint.
struct LoadedCheckpoint {
  CheckpointSetInfo info;
  std::string payload;
  int64_t sets_rejected = 0;  // Newer sets skipped as torn/corrupt.
  bool rebuilt_from_parity = false;
};

/// The durable side of multi-level checkpointing: a small farm of
/// independent snapshot locations, a write path that lays checkpoint sets
/// across them (L1 = one local copy, L2 = partner or XOR redundancy), and a
/// load path that returns the newest set that still validates — torn sets
/// (an injected kill mid-write), corrupted fragments (checksum mismatch)
/// and wholesale location loss all fall back or reconstruct.
///
/// Like the move journal, the manager keeps its "durable" bytes in memory:
/// it survives the simulated process kill (`CmServer` kill/restart drops
/// every volatile layer but keeps the manager and the journal text), and
/// the fault surface (`DropLocation`, `CorruptNewestAt`, injected
/// `snapcrash`/`snapcorrupt` events) produces exactly the on-disk states a
/// real crash or media fault would leave.
class CheckpointManager {
 public:
  explicit CheckpointManager(CheckpointOptions options = {});

  /// Writes one checkpoint set. `payload` is the encoded (already
  /// checksummed) snapshot document; `level` selects the redundancy
  /// (1 = local, 2 = the configured scheme). Consults `injector` (may be
  /// null) at every snapshot-phase boundary: a fired kill leaves whatever
  /// fragments were durable so far — possibly a torn set — and returns
  /// Unavailable; the caller must treat the process as dead.
  StatusOr<CheckpointSetInfo> Write(std::string_view payload, int level,
                                    int64_t round,
                                    FaultInjector* injector = nullptr);

  /// Newest set whose payload can be assembled and validates; falls back
  /// set by set (torn and corrupt sets are counted, never trusted).
  /// NotFound when no set survives.
  StatusOr<LoadedCheckpoint> LoadNewestValid();

  // --- Fault surface (tests and chaos scripts). --------------------------
  /// Destroys every fragment at `location` — whole-disk loss.
  Status DropLocation(int64_t location);

  /// Flips one byte in the newest fragment stored at `location` (silent
  /// media corruption; the load path must reject the fragment by checksum).
  Status CorruptNewestAt(int64_t location);

  /// Deletes the newest set's fragments entirely (e.g. an operator error);
  /// the next load falls back to the set before it.
  Status DropNewestSet();

  int64_t num_locations() const {
    return static_cast<int64_t>(locations_.size());
  }
  int64_t num_sets() const { return static_cast<int64_t>(sets_.size()); }
  const CheckpointStats& stats() const { return stats_; }
  const CheckpointOptions& options() const { return options_; }

 private:
  struct Fragment {
    int64_t location = 0;
    std::string name;
  };
  struct SetRecord {
    CheckpointSetInfo info;
    CheckpointRedundancy redundancy = CheckpointRedundancy::kPartner;
    int64_t data_fragments = 1;   // Excluding parity.
    int64_t payload_bytes = 0;
    std::vector<Fragment> fragments;  // In write order; parity last (XOR).
  };

  /// Writes one framed fragment document; applies injected corruption.
  void PutFragment(SetRecord& record, int64_t location, int64_t index,
                   int64_t count, std::string_view bytes, bool parity,
                   FaultInjector* injector);

  /// Assembles and validates `record`'s payload; InvalidArgument/NotFound
  /// when the set is torn, corrupt beyond redundancy, or incomplete.
  StatusOr<std::string> Assemble(const SetRecord& record,
                                 bool* rebuilt_from_parity);

  CheckpointOptions options_;
  std::vector<std::map<std::string, std::string>> locations_;
  std::vector<SetRecord> sets_;  // Ascending set id.
  int64_t next_set_ = 1;
  CheckpointStats stats_;
};

}  // namespace scaddar

#endif  // SCADDAR_RECOVERY_CHECKPOINT_MANAGER_H_
