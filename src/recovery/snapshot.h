#ifndef SCADDAR_RECOVERY_SNAPSHOT_H_
#define SCADDAR_RECOVERY_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/governor.h"
#include "core/types.h"
#include "util/statusor.h"

namespace scaddar {

/// The versioned, checksummed snapshot documents behind multi-level
/// checkpoint/restart. A snapshot captures *everything* a server needs to
/// resume — not just the durable metadata `CmServer::SaveSnapshot` keeps
/// (policy + op log + catalog), but the materialized store rows, staged
/// copies, active stream cursors, serving counters and the move journal as
/// of the capture instant. Restoring rows directly is what makes a
/// checkpoint restart cheaper than replaying placement history: no remap
/// chain is walked per block.
///
/// Every document starts with one header line
///
///   <magic> <payload-bytes> <fnv1a64-hex>
///
/// and decoding rejects any document whose byte count or checksum does not
/// match — a torn or corrupted snapshot is detected before a single field
/// is trusted, and the checkpoint loader falls back to the previous set.

/// FNV-1a 64 over `data` — the integrity checksum on snapshot documents
/// and checkpoint fragments.
uint64_t SnapshotChecksum(std::string_view data);

/// Prepends the `<magic> <bytes> <checksum>` header line to `payload`.
std::string WrapChecksummed(std::string_view magic, std::string_view payload);

/// Validates the header line and returns the payload view into `document`.
/// InvalidArgument ("torn"/"checksum mismatch") on any disagreement.
StatusOr<std::string_view> UnwrapChecksummed(std::string_view magic,
                                             std::string_view document);

/// One catalog object plus its materialized placement row.
struct SnapshotObject {
  ObjectId id = 0;
  int64_t num_blocks = 0;
  int64_t weight = 1;
  int64_t generation = 0;
  Epoch epoch_added = 0;
  std::vector<PhysicalDiskId> row;  // row[i] = block i's physical disk.

  friend bool operator==(const SnapshotObject&,
                         const SnapshotObject&) = default;
};

/// One active playback session, cursor position included.
struct SnapshotStream {
  int64_t id = 0;
  ObjectId object = 0;
  BlockIndex next_block = 0;
  int64_t rate = 1;
  int64_t start_round = 0;
  int64_t hiccups = 0;
  bool paused = false;
  bool playback_started = false;

  friend bool operator==(const SnapshotStream&,
                         const SnapshotStream&) = default;
};

/// Full single-server state at one instant.
struct ServerSnapshot {
  std::string policy;
  std::string oplog;    // OpLog::Serialize text.
  std::string journal;  // MoveJournal::Serialize text as of the capture.
  std::vector<SnapshotObject> objects;  // Catalog registration order.
  std::vector<std::pair<BlockRef, PhysicalDiskId>> staged;
  std::vector<SnapshotStream> streams;
  std::vector<int64_t> startup_latencies;
  int64_t round = 0;
  int64_t next_stream_id = 0;
  int64_t completed_streams = 0;
  int64_t total_served = 0;
  int64_t total_hiccups = 0;
  // True when the capture was quiescent: migration idle, no staged copies,
  // no retiring disks — i.e. the rows provably equal AF(). A restore from a
  // quiescent snapshot with an empty surviving WAL skips the divergence
  // rescan entirely (nothing was in flight, nothing moved afterwards).
  bool converged = false;
  // Adaptive reorg driver state. `governor_bits == 0` means the document
  // predates the driver (or never configured one): restore keeps the
  // config-built driver and empty trigger history.
  int governor_bits = 0;
  double governor_eps = 0.0;
  double reorg_cov_threshold = 0.0;
  int64_t reorg_check_every = 16;
  bool auto_reorg = false;
  std::vector<ReorgTrigger> reorg_triggers;
};

std::string EncodeServerSnapshot(const ServerSnapshot& snapshot);
StatusOr<ServerSnapshot> DecodeServerSnapshot(std::string_view document);

/// One member shard inside a cluster snapshot. The document is a complete
/// `EncodeServerSnapshot` output (own header + checksum), nested verbatim.
struct ClusterSnapshotShard {
  int member = 0;
  bool retiring = false;
  std::string document;

  friend bool operator==(const ClusterSnapshotShard&,
                         const ClusterSnapshotShard&) = default;
};

/// Cluster-wide state: the seat-table router, the owner directory (object
/// insertion order — the deterministic spine of the transfer queue) and one
/// nested server snapshot per shard. In-flight cross-shard transfers are
/// volatile by design: restore re-derives them from route-vs-owner
/// divergence, the same reconciliation that runs after a membership change.
struct ClusterSnapshot {
  std::vector<int> seats;
  int next_member = 0;
  int64_t map_epoch = 0;
  std::vector<std::pair<ObjectId, int>> owners;  // Insertion order.
  std::vector<ClusterSnapshotShard> shards;      // Creation order.
  int64_t round = 0;
  int64_t handoff_rejects = 0;
};

std::string EncodeClusterSnapshot(const ClusterSnapshot& snapshot);
StatusOr<ClusterSnapshot> DecodeClusterSnapshot(std::string_view document);

}  // namespace scaddar

#endif  // SCADDAR_RECOVERY_SNAPSHOT_H_
