#include "cluster/cross_shard_migrator.h"

#include <algorithm>

#include "util/status.h"

namespace scaddar {

void CrossShardMigrator::Enqueue(const ObjectTransfer& transfer) {
  SCADDAR_CHECK(transfer.from != transfer.to);
  SCADDAR_CHECK(transfer.num_blocks > 0);
  SCADDAR_CHECK(!HasTransfer(transfer.object));
  queue_.push_back(transfer);
  queue_.back().copied = 0;
}

bool CrossShardMigrator::HasTransfer(ObjectId object) const {
  for (const ObjectTransfer& transfer : queue_) {
    if (transfer.object == object) {
      return true;
    }
  }
  return false;
}

int CrossShardMigrator::TargetOf(ObjectId object) const {
  for (const ObjectTransfer& transfer : queue_) {
    if (transfer.object == object) {
      return transfer.to;
    }
  }
  return -1;
}

void CrossShardMigrator::Retarget(ObjectId object, int to) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->object != object) {
      continue;
    }
    if (it->to == to) {
      return;  // Already pointed at the latest target.
    }
    ++retargets_;
    if (to == it->from) {
      queue_.erase(it);  // Back home: the intent cancels to a no-op.
    } else {
      it->to = to;
      it->copied = 0;
    }
    return;
  }
}

void CrossShardMigrator::Cancel(ObjectId object) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->object == object) {
      queue_.erase(it);
      return;
    }
  }
}

int64_t CrossShardMigrator::pending_blocks() const {
  int64_t remaining = 0;
  for (const ObjectTransfer& transfer : queue_) {
    remaining += transfer.num_blocks - transfer.copied;
  }
  return remaining;
}

CrossShardRound CrossShardMigrator::AdvanceRound(int64_t budget) {
  SCADDAR_CHECK(budget >= 0);
  CrossShardRound round;
  if (budget == 0 || queue_.empty()) {
    return round;
  }
  // Remaining per-member budgets this round, filled lazily at `budget`.
  std::unordered_map<int, int64_t> send_left;
  std::unordered_map<int, int64_t> recv_left;
  auto left = [budget](std::unordered_map<int, int64_t>& map, int member) {
    auto [it, inserted] = map.try_emplace(member, budget);
    (void)inserted;
    return it;
  };
  std::deque<ObjectTransfer> still_pending;
  for (ObjectTransfer& transfer : queue_) {
    auto send_it = left(send_left, transfer.from);
    auto recv_it = left(recv_left, transfer.to);
    const int64_t step =
        std::min({transfer.num_blocks - transfer.copied, send_it->second,
                  recv_it->second});
    if (step > 0) {
      transfer.copied += step;
      send_it->second -= step;
      recv_it->second -= step;
      round.blocks_copied += step;
      total_blocks_copied_ += step;
    }
    if (transfer.copied == transfer.num_blocks) {
      round.ready_to_commit.push_back(transfer);
      ++total_commits_;
    } else {
      still_pending.push_back(transfer);
    }
  }
  queue_.swap(still_pending);
  return round;
}

}  // namespace scaddar
