#ifndef SCADDAR_CLUSTER_CLUSTER_SERVER_H_
#define SCADDAR_CLUSTER_CLUSTER_SERVER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cluster/cross_shard_migrator.h"
#include "placement/shard_map.h"
#include "server/config.h"
#include "server/server.h"
#include "server/workload/traffic_engine.h"
#include "util/epoch.h"
#include "util/statusor.h"
#include "util/thread_pool.h"

namespace scaddar {

class CheckpointManager;

/// Configuration of the scale-out cluster: every server shard is built from
/// the same `ServerConfig` template (same policy, same master seed — an
/// object's X0 sequence is shard-independent, so a migrated object's
/// placement is recomputed fresh on its destination, never shipped).
struct ClusterConfig {
  /// Per-shard server template. `first_stream_id` is overwritten per shard
  /// (each shard hands out ids tagged with its member id in the high bits).
  ServerConfig shard;

  /// Server shards at creation (>= 1).
  int initial_shards = 1;

  /// Cross-shard interconnect budget: blocks any one shard may send — and,
  /// independently, receive — per round while objects migrate between
  /// shards. 0 freezes cross-shard copies (transfers queue but never
  /// advance).
  int64_t cross_shard_budget = 64;
};

/// Cluster-wide per-round metrics: the field-for-field sum of the member
/// shards' `RoundMetrics` (merged serially in shard creation order) plus the
/// cross-shard reorganization counters. For a 1-shard cluster the common
/// fields are byte-identical to the bare server's metrics.
struct ClusterRoundMetrics {
  int64_t round = 0;
  int64_t active_streams = 0;
  int64_t requests = 0;
  int64_t served = 0;
  int64_t hiccups = 0;
  int64_t migrated = 0;            // Disk-level moves inside shards.
  int64_t pending_migration = 0;   // Disk-level, summed over shards.
  int64_t retiring_disks = 0;
  int64_t cross_shard_blocks = 0;  // Copied between shards this round.
  int64_t cross_shard_commits = 0; // Objects that changed shards this round.
  int64_t pending_transfers = 0;   // Cross-shard queue depth after the round.
};

/// Per-shard wall timings of one serialized round — the bench's model-time
/// input on hosts with fewer cores than shards: shards are independent, so
/// the modeled parallel round costs `max(shard_ns) + serial_ns`.
struct ClusterTickTiming {
  std::vector<int64_t> shard_ns;  // Tick cost per shard, creation order.
  int64_t serial_ns = 0;          // Merge + cross-shard pump + retirement.
};

/// The epoch descriptor the coordinator publishes before fanning a round out
/// to the pool; workers re-read and validate it, proving membership cannot
/// change mid-round (same seqlock idiom as the sharded scheduler's
/// `RoundEpoch`).
struct ClusterEpoch {
  int64_t round = 0;
  int64_t map_epoch = 0;
  int32_t num_shards = 0;
  int32_t padding = 0;
};

/// A cluster of independent `CmServer` shards behind one façade — the
/// scale-*out* axis to the shards' internal scale-*up* (disk scaling).
///
/// Layering mirrors a single server's placement/store split, one level up:
///  - the `ShardMap` (jump hash over stable member ids) is where objects
///    *should* live — the cluster's AF();
///  - the owner directory is where objects *are* — materialized truth;
///  - the `CrossShardMigrator` converges the two after `AddServerShard` /
///    `RemoveServerShard`, under per-shard interconnect budgets, while the
///    owning shard keeps serving every affected stream.
///
/// Determinism contract: shards interact only through the serial sections
/// (merge, transfer commits, retirement), which run in shard creation
/// order. A round's outcome is therefore identical whether shards tick on
/// the pool or one-by-one (`Tick` vs `TickSerialized`), and a 1-shard
/// cluster is byte-identical to a bare `CmServer` fed the same calls.
class ClusterServer {
 public:
  static StatusOr<std::unique_ptr<ClusterServer>> Create(
      const ClusterConfig& config);

  ClusterServer(const ClusterServer&) = delete;
  ClusterServer& operator=(const ClusterServer&) = delete;

  // --- Object catalog (routed). ----------------------------------------
  /// Ingests an object on the shard the map routes it to.
  Status AddObject(ObjectId id, int64_t num_blocks, int64_t bitrate_weight = 1);

  /// Deletes an object from its owning shard (refused while streamed, like
  /// the bare server); any queued cross-shard transfer is cancelled.
  Status RemoveObject(ObjectId id);

  // --- Streaming (routed). ---------------------------------------------
  /// Starts a stream on the object's *owning* shard (during a migration the
  /// source serves until the commit flips ownership). Returns the
  /// cluster-unique stream id: shard member in the high bits.
  StatusOr<int64_t> StartStream(ObjectId object);

  Status PauseStream(int64_t stream_id);
  Status ResumeStream(int64_t stream_id);
  Status SeekStream(int64_t stream_id, BlockIndex block);

  // --- Rounds. ----------------------------------------------------------
  /// One cluster round: publish the epoch, tick every shard in parallel on
  /// the pool, merge metrics serially in shard order, pump cross-shard
  /// copies and commit completed transfers, retire drained shards.
  ClusterRoundMetrics Tick();

  /// Identical outcome to `Tick`, but shards run one-by-one with per-shard
  /// wall timings captured into `timing` (may be null). This is the model
  /// clock for throughput benches on hosts narrower than the cluster.
  ClusterRoundMetrics TickSerialized(ClusterTickTiming* timing);

  /// Generates one round of traffic from `engine` over the cluster-wide
  /// stream view (shards concatenated in creation order), applies it through
  /// routing/admission (rejects are recorded on the engine), then `Tick`s.
  ClusterRoundMetrics DriveRound(TrafficEngine& engine);

  // --- Cluster scaling. -------------------------------------------------
  /// Adds an empty server shard and reroutes: every object whose jump-hash
  /// target moved (an expected ~1/(N+1) of the catalog — nothing else)
  /// gets a queued cross-shard transfer. Returns the new stable member id.
  StatusOr<int> AddServerShard();

  /// Removes member `shard` from routing (swap-with-last renumbering, ~2/N
  /// of objects reroute) and queues its evacuation. The shard keeps serving
  /// until it owns nothing and drains, then its server is destroyed.
  Status RemoveServerShard(int shard);

  // --- Per-shard disk scaling (forwarded). ------------------------------
  Status ScaleAddDisks(int shard, int64_t count);
  Status ScaleRemoveDisks(int shard, std::vector<DiskSlot> slots);

  // --- Adaptive self-triggered reorganization (forwarded). --------------
  /// Configures every live shard's governor and CoV threshold (validated
  /// once up front — all-or-nothing), and updates the shard template so
  /// shards added later inherit the knobs.
  Status ConfigureGovernor(int bits, double eps, double cov_threshold);

  /// Enables/disables the adaptive driver on every live shard and in the
  /// shard template.
  void SetAutoReorg(bool enabled);

  /// Self-triggered reorganizations summed over live shards.
  int64_t TotalReorgTriggers() const;

  // --- Invariants. -------------------------------------------------------
  /// Cross-checks the cluster: every owned object lives in exactly its
  /// owner's catalog, route targets diverge from owners only while a
  /// transfer is queued, and every shard's own store matches its AF()
  /// (shards with pending disk migration are skipped, as in the bare
  /// server).
  Status VerifyIntegrity() const;

  /// True when no cross-shard transfer is queued and no shard has pending
  /// disk-level migration.
  bool MigrationIdle() const;

  // --- Accessors. ---------------------------------------------------------
  int64_t round() const { return round_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ShardMap& map() const { return map_; }
  const CrossShardMigrator& migrator() const { return migrator_; }
  const ClusterConfig& config() const { return config_; }

  /// Member ids in shard creation order (the serial-section order).
  std::vector<int> members() const;

  /// The shard serving member `id`, or null. Retiring members are still
  /// returned until their server drains and is destroyed.
  const CmServer* shard(int id) const;
  CmServer* shard(int id);

  /// Owning member of `object`, or -1. Diverges from `map().MemberOf` only
  /// while the object's transfer is in flight.
  int OwnerOf(ObjectId object) const;

  int64_t num_objects() const { return static_cast<int64_t>(objects_.size()); }

  /// Cluster catalog in ingestion order (= popularity rank for the traffic
  /// engine, matching the bare server's registration order).
  const std::vector<ObjectId>& objects() const { return objects_; }

  /// Cluster-total stream counters (sums over live shards; streams detached
  /// for handoff count in neither completed nor hiccups).
  int64_t active_streams() const;
  int64_t total_served() const;
  int64_t total_hiccups() const;
  int64_t completed_streams() const;

  /// Handed-off streams the destination's admission control turned away
  /// (the session drops instead of resuming — the cluster-level hiccup of
  /// last resort).
  int64_t handoff_rejects() const { return handoff_rejects_; }

  /// Cluster-wide startup latencies (rounds to first delivered block),
  /// concatenated over live shards in creation order.
  std::vector<int64_t> StartupLatencies() const;

  /// Last published epoch (tests assert workers saw a coherent view).
  ClusterEpoch PublishedEpoch() const { return published_.Read(); }

  // --- Checkpoint/restart (src/recovery). --------------------------------
  /// Serializes the whole cluster — seat table, owner directory and one
  /// nested server snapshot per shard — into one checksummed document.
  /// In-flight cross-shard transfers are deliberately excluded: restore
  /// re-derives them from route-vs-owner divergence.
  StatusOr<std::string> EncodeCheckpoint() const;

  /// Writes `EncodeCheckpoint` through `manager` as an L`level` set at the
  /// current cluster round.
  Status WriteCheckpoint(CheckpointManager& manager, int level) const;

  /// Rebuilds a cluster from the newest valid set in `manager`: the shard
  /// map from its checkpointed parts, each shard via
  /// `CmServer::FromSnapshotDocument` (journal-wins reconciliation inside),
  /// then `ReconcileRouting` to requeue any transfer the kill interrupted.
  static StatusOr<std::unique_ptr<ClusterServer>> RestoreFromCheckpoint(
      const ClusterConfig& config, CheckpointManager& manager);

 private:
  struct Shard {
    int member = 0;
    std::unique_ptr<CmServer> server;
    bool retiring = false;
  };

  explicit ClusterServer(const ClusterConfig& config);

  /// Index into `shards_` for member `id`, or -1.
  int ShardIndexOf(int member) const;

  /// The member encoded in a cluster stream id's high bits.
  static int MemberOfStreamId(int64_t stream_id);

  /// The config template specialized for `member` (stream-id tag, per-shard
  /// backend directory).
  ServerConfig ShardConfig(int member) const;

  /// Builds a shard server for `member` from the config template.
  StatusOr<std::unique_ptr<CmServer>> BuildShard(int member) const;

  /// Requeues/retargets/cancels transfers so every object's queued
  /// destination equals its *latest* route target. Walks `objects_` in
  /// insertion order — the deterministic spine of the transfer queue.
  void ReconcileRouting();

  /// Runs the ticks for shards [0, n) either on the pool or serially with
  /// timings, then the serial tail; the single implementation behind `Tick`
  /// and `TickSerialized`.
  ClusterRoundMetrics RunRound(bool serialize, ClusterTickTiming* timing);

  /// Serial tail of a round: merge, transfer pump, commits, retirement.
  void CommitTransfer(const ObjectTransfer& transfer);

  /// Destroys retiring shards that own nothing, serve nothing and have no
  /// pending disk migration.
  void RetireDrainedShards();

  ClusterConfig config_;
  ShardMap map_;
  std::vector<Shard> shards_;               // Creation order.
  std::unordered_map<ObjectId, int> owner_; // Materialized truth.
  std::vector<ObjectId> objects_;           // Insertion order (determinism).
  CrossShardMigrator migrator_;
  Published<ClusterEpoch> published_;
  std::unique_ptr<ThreadPool> pool_;        // Lazy; >1 live shard only.

  int64_t round_ = 0;
  int64_t handoff_rejects_ = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_CLUSTER_CLUSTER_SERVER_H_
