#ifndef SCADDAR_CLUSTER_CLUSTER_SCENARIO_H_
#define SCADDAR_CLUSTER_CLUSTER_SCENARIO_H_

#include <string_view>

#include "cluster/cluster_server.h"
#include "server/scenario.h"
#include "util/statusor.h"

namespace scaddar {

/// Drives a `ClusterServer` from the same line-oriented script language as
/// `RunScenario`, with object/stream commands routed through the cluster
/// façade and three cluster-only commands layered on:
///
///   addshard                             add a server shard (jump-hash
///                                        delta objects start migrating)
///   removeshard <member>                 evacuate and retire a shard
///   scaledisks <member> add <count>      disk scaling inside one shard
///   scaledisks <member> remove <slot>[,<slot>...]
///
/// Shared commands (`addobject`, `removeobject`, `stream`, `pause`,
/// `resume`, `seek`, `tick`, `drain`, `verify`, the `traffic *` settings
/// and `ticktraffic`) behave exactly as documented in `server/scenario.h`;
/// `drain` waits for cluster-wide idleness (cross-shard queue plus every
/// shard's disk migration). `rebase` and `crash` are single-server-only and
/// report an error here.
///
/// A 1-shard cluster runs any shared-command script to the same
/// `ScenarioResult` as `RunScenario` on a bare server with the shard's
/// config — the DSL-level face of the cluster equivalence contract.
StatusOr<ScenarioResult> RunClusterScenario(ClusterServer& cluster,
                                            std::string_view script);

}  // namespace scaddar

#endif  // SCADDAR_CLUSTER_CLUSTER_SCENARIO_H_
