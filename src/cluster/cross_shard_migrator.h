#ifndef SCADDAR_CLUSTER_CROSS_SHARD_MIGRATOR_H_
#define SCADDAR_CLUSTER_CROSS_SHARD_MIGRATOR_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "core/types.h"

namespace scaddar {

/// One whole-object transfer between server shards. Identified by object;
/// `from` is the owning (serving) shard, `to` the routing target. Mirrors
/// the PR-5 move journal's phase structure at object granularity:
///
///   intent  — queued; the source still owns and serves the object.
///   copy    — `copied` advances under per-shard bandwidth budgets; still
///             wholly served by the source (the staged copy is invisible).
///   commit  — atomic flip once `copied == num_blocks`: the destination
///             materializes the object, streams hand off, the source drops
///             its replica. Never partial — a crash mid-copy loses only
///             staged bytes, never ownership.
struct ObjectTransfer {
  ObjectId object = 0;
  int from = 0;  // Member id of the source shard.
  int to = 0;    // Member id of the destination shard.
  int64_t num_blocks = 0;
  int64_t weight = 1;
  int64_t copied = 0;
};

/// What one pump round decided: transfers whose copy completed (ready for
/// the caller to commit, in queue order) and the blocks copied.
struct CrossShardRound {
  std::vector<ObjectTransfer> ready_to_commit;
  int64_t blocks_copied = 0;
};

/// The cluster's cross-shard reorganization queue: a deterministic,
/// bandwidth-budgeted planner over whole-object transfers. Pure
/// bookkeeping — the `ClusterServer` executes the commits (destination
/// materialization, stream handoff, source drop) so this class stays
/// trivially testable and the execution stays in one place.
///
/// Budgets model the shard interconnect: per round each shard may send at
/// most `budget` blocks and receive at most `budget` blocks; a transfer
/// advances by the minimum of its remaining blocks and both endpoints'
/// remaining budgets. The queue is FIFO but non-blocking: a transfer whose
/// endpoints are exhausted is skipped this round, later transfers on idle
/// shard pairs still make progress (per-shard-pair head-of-line order is
/// preserved because transfers between the same endpoints drain in queue
/// order).
///
/// Overlapping scaling operations compose the same way the disk-level
/// `MigrationExecutor` composes: `Retarget` points a queued transfer at the
/// *latest* routing target, and a transfer retargeted back to its source
/// cancels to a no-op — stale intents never move an object to an outdated
/// home.
class CrossShardMigrator {
 public:
  /// Queues an intent. One live transfer per object (checked).
  void Enqueue(const ObjectTransfer& transfer);

  /// True iff `object` has a queued transfer.
  bool HasTransfer(ObjectId object) const;

  /// The queued transfer's destination member, or -1.
  int TargetOf(ObjectId object) const;

  /// Repoints a queued transfer at `to` (copy progress resets — the staged
  /// bytes were for the old destination). If `to` equals the transfer's
  /// source, the intent cancels.
  void Retarget(ObjectId object, int to);

  /// Drops the queued transfer for `object`, if any (object removed).
  void Cancel(ObjectId object);

  /// Advances copies under per-shard budgets of `budget` blocks sent and
  /// `budget` received per shard per round; completed transfers leave the
  /// queue and are returned for the caller to commit.
  CrossShardRound AdvanceRound(int64_t budget);

  bool idle() const { return queue_.empty(); }
  int64_t pending_transfers() const {
    return static_cast<int64_t>(queue_.size());
  }
  int64_t pending_blocks() const;

  int64_t total_blocks_copied() const { return total_blocks_copied_; }
  int64_t total_commits() const { return total_commits_; }
  /// Intents cancelled or retargeted by overlapping scaling operations.
  int64_t retargets() const { return retargets_; }

  /// Queue contents in order (test introspection).
  std::vector<ObjectTransfer> QueueSnapshot() const {
    return std::vector<ObjectTransfer>(queue_.begin(), queue_.end());
  }

 private:
  std::deque<ObjectTransfer> queue_;
  int64_t total_blocks_copied_ = 0;
  int64_t total_commits_ = 0;
  int64_t retargets_ = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_CLUSTER_CROSS_SHARD_MIGRATOR_H_
