#include "cluster/cluster_scenario.h"

#include <memory>
#include <vector>

#include "server/scenario_parse.h"
#include "server/workload/traffic_engine.h"
#include "stats/percentile.h"

namespace scaddar {

using scenario::LineError;
using scenario::ParseDouble;
using scenario::ParseInt;
using scenario::ParseSlotList;
using scenario::Tokenize;

StatusOr<ScenarioResult> RunClusterScenario(ClusterServer& cluster,
                                            std::string_view script) {
  ScenarioResult result;
  int64_t line_number = 0;
  TrafficConfig traffic_config;
  std::unique_ptr<TrafficEngine> traffic;
  // One governor declaration per scenario, as in the bare interpreter.
  bool governor_declared = false;
  std::string_view rest = script;
  while (!rest.empty()) {
    const size_t eol = rest.find('\n');
    std::string_view line = rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view()
                                         : rest.substr(eol + 1);
    ++line_number;
    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    const std::vector<std::string_view> tokens = Tokenize(line);
    if (tokens.empty()) {
      continue;
    }
    ++result.lines_executed;
    const std::string_view command = tokens[0];

    const auto tick_once = [&] {
      const ClusterRoundMetrics metrics = cluster.Tick();
      ++result.rounds;
      result.served += metrics.served;
      result.hiccups += metrics.hiccups;
      result.migrated += metrics.migrated + metrics.cross_shard_blocks;
    };

    if (command == "addobject" && (tokens.size() == 3 || tokens.size() == 4)) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t id, ParseInt(tokens[1]));
      SCADDAR_ASSIGN_OR_RETURN(const int64_t blocks, ParseInt(tokens[2]));
      int64_t weight = 1;
      if (tokens.size() == 4) {
        SCADDAR_ASSIGN_OR_RETURN(weight, ParseInt(tokens[3]));
      }
      const Status status = cluster.AddObject(id, blocks, weight);
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
    } else if (command == "removeobject" && tokens.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t id, ParseInt(tokens[1]));
      const Status status = cluster.RemoveObject(id);
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
    } else if (command == "stream" && tokens.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t object, ParseInt(tokens[1]));
      const StatusOr<int64_t> id = cluster.StartStream(object);
      if (id.ok()) {
        ++result.streams_started;
      } else if (id.status().code() == StatusCode::kResourceExhausted) {
        ++result.streams_rejected;
      } else {
        return LineError(line_number, id.status().message());
      }
    } else if (command == "pause" && tokens.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t id, ParseInt(tokens[1]));
      const Status status = cluster.PauseStream(id);
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
    } else if (command == "resume" && tokens.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t id, ParseInt(tokens[1]));
      const Status status = cluster.ResumeStream(id);
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
    } else if (command == "seek" && tokens.size() == 3) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t id, ParseInt(tokens[1]));
      SCADDAR_ASSIGN_OR_RETURN(const int64_t block, ParseInt(tokens[2]));
      const Status status = cluster.SeekStream(id, block);
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
    } else if (command == "addshard" && tokens.size() == 1) {
      const StatusOr<int> member = cluster.AddServerShard();
      if (!member.ok()) {
        return LineError(line_number, member.status().message());
      }
    } else if (command == "removeshard" && tokens.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t member, ParseInt(tokens[1]));
      const Status status = cluster.RemoveServerShard(static_cast<int>(member));
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
    } else if (command == "scaledisks" && tokens.size() == 4 &&
               tokens[2] == "add") {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t member, ParseInt(tokens[1]));
      SCADDAR_ASSIGN_OR_RETURN(const int64_t count, ParseInt(tokens[3]));
      const Status status =
          cluster.ScaleAddDisks(static_cast<int>(member), count);
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
    } else if (command == "scaledisks" && tokens.size() == 4 &&
               tokens[2] == "remove") {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t member, ParseInt(tokens[1]));
      SCADDAR_ASSIGN_OR_RETURN(const std::vector<DiskSlot> slots,
                               ParseSlotList(tokens[3]));
      const Status status =
          cluster.ScaleRemoveDisks(static_cast<int>(member), slots);
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
    } else if (command == "tick" && tokens.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t rounds, ParseInt(tokens[1]));
      if (rounds < 0) {
        return LineError(line_number, "tick count must be >= 0");
      }
      for (int64_t i = 0; i < rounds; ++i) {
        tick_once();
      }
    } else if (command == "drain" && tokens.size() == 1) {
      int64_t guard = 0;
      while (!cluster.MigrationIdle()) {
        tick_once();
        if (++guard > 1'000'000) {
          return LineError(line_number, "drain did not converge");
        }
      }
    } else if (command == "traffic" && tokens.size() >= 3) {
      const std::string_view key = tokens[1];
      traffic.reset();
      if (key == "seed" && tokens.size() == 3) {
        SCADDAR_ASSIGN_OR_RETURN(const int64_t seed, ParseInt(tokens[2]));
        traffic_config.seed = static_cast<uint64_t>(seed);
      } else if (key == "arrivals" && tokens.size() == 3) {
        SCADDAR_ASSIGN_OR_RETURN(traffic_config.arrivals_per_round,
                                 ParseDouble(tokens[2]));
      } else if (key == "zipf" && tokens.size() == 3) {
        SCADDAR_ASSIGN_OR_RETURN(traffic_config.zipf_theta,
                                 ParseDouble(tokens[2]));
      } else if (key == "diurnal" && tokens.size() == 4) {
        SCADDAR_ASSIGN_OR_RETURN(traffic_config.diurnal_amplitude,
                                 ParseDouble(tokens[2]));
        SCADDAR_ASSIGN_OR_RETURN(traffic_config.diurnal_period,
                                 ParseInt(tokens[3]));
      } else if (key == "vcr" && tokens.size() == 5) {
        SCADDAR_ASSIGN_OR_RETURN(traffic_config.pause_probability,
                                 ParseDouble(tokens[2]));
        SCADDAR_ASSIGN_OR_RETURN(traffic_config.resume_probability,
                                 ParseDouble(tokens[3]));
        SCADDAR_ASSIGN_OR_RETURN(traffic_config.seek_probability,
                                 ParseDouble(tokens[4]));
      } else if (key == "flash" && tokens.size() == 6) {
        FlashCrowd crowd;
        SCADDAR_ASSIGN_OR_RETURN(crowd.start_round, ParseInt(tokens[2]));
        SCADDAR_ASSIGN_OR_RETURN(crowd.duration, ParseInt(tokens[3]));
        SCADDAR_ASSIGN_OR_RETURN(crowd.rank, ParseInt(tokens[4]));
        SCADDAR_ASSIGN_OR_RETURN(crowd.boost, ParseInt(tokens[5]));
        traffic_config.flash_crowds.push_back(crowd);
      } else {
        return LineError(line_number, "unrecognized traffic setting");
      }
    } else if (command == "ticktraffic" && tokens.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t rounds, ParseInt(tokens[1]));
      if (rounds < 0) {
        return LineError(line_number, "ticktraffic count must be >= 0");
      }
      if (traffic == nullptr) {
        if (cluster.objects().empty()) {
          return LineError(line_number,
                           "ticktraffic needs at least one object");
        }
        traffic = std::make_unique<TrafficEngine>(traffic_config);
        traffic->SetObjects(cluster.objects());
      }
      for (int64_t i = 0; i < rounds; ++i) {
        // Mirrors the bare interpreter's loop (and `ClusterServer::
        // DriveRound`), with the started/rejected accounting the DSL
        // reports: cluster-wide stream view in shard creation order, then
        // arrivals through routed admission, then VCR events, then Tick.
        std::vector<const Stream*> view;
        for (const int member : cluster.members()) {
          for (const Stream& stream : cluster.shard(member)->streams()) {
            view.push_back(&stream);
          }
        }
        const RoundTraffic round_traffic =
            traffic->NextRound(cluster.round(), view);
        for (const ObjectId object : round_traffic.arrivals) {
          const StatusOr<int64_t> id = cluster.StartStream(object);
          if (id.ok()) {
            ++result.streams_started;
          } else if (id.status().code() == StatusCode::kResourceExhausted) {
            ++result.streams_rejected;
          } else {
            return LineError(line_number, id.status().message());
          }
        }
        for (const int64_t id : round_traffic.pauses) {
          SCADDAR_CHECK(cluster.PauseStream(id).ok());
        }
        for (const int64_t id : round_traffic.resumes) {
          SCADDAR_CHECK(cluster.ResumeStream(id).ok());
        }
        for (const SeekEvent& seek : round_traffic.seeks) {
          SCADDAR_CHECK(cluster.SeekStream(seek.stream_id, seek.block).ok());
        }
        tick_once();
      }
    } else if (command == "governor" &&
               (tokens.size() == 3 || tokens.size() == 4)) {
      if (governor_declared) {
        return LineError(line_number, "duplicate governor declaration");
      }
      SCADDAR_ASSIGN_OR_RETURN(const int64_t bits, ParseInt(tokens[1]));
      if (bits < 1 || bits > 64) {
        return LineError(line_number, "governor bits must be in [1, 64]");
      }
      SCADDAR_ASSIGN_OR_RETURN(const double eps, ParseDouble(tokens[2]));
      double cov = cluster.config().shard.reorg_cov_threshold;
      if (tokens.size() == 4) {
        SCADDAR_ASSIGN_OR_RETURN(cov, ParseDouble(tokens[3]));
      }
      const Status status =
          cluster.ConfigureGovernor(static_cast<int>(bits), eps, cov);
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
      governor_declared = true;
    } else if (command == "autoreorg" && tokens.size() == 2) {
      if (tokens[1] == "on") {
        cluster.SetAutoReorg(true);
      } else if (tokens[1] == "off") {
        cluster.SetAutoReorg(false);
      } else {
        return LineError(line_number, "autoreorg takes on|off");
      }
    } else if (command == "verify" && tokens.size() == 1) {
      const Status status = cluster.VerifyIntegrity();
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
    } else if (command == "rebase" || command == "crash") {
      return LineError(line_number,
                       "command is single-server-only (no cluster form)");
    } else {
      return LineError(line_number, "unrecognized command");
    }
  }
  result.startup_p50 = PercentileOf(cluster.StartupLatencies(), 0.50);
  result.startup_p99 = PercentileOf(cluster.StartupLatencies(), 0.99);
  result.startup_p999 = PercentileOf(cluster.StartupLatencies(), 0.999);
  result.auto_reorg_triggers = cluster.TotalReorgTriggers();
  return result;
}

}  // namespace scaddar
