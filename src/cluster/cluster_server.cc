#include "cluster/cluster_server.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "recovery/checkpoint_manager.h"
#include "recovery/snapshot.h"
#include "util/status.h"

namespace scaddar {
namespace {

/// Stream ids carry their shard's member id above this bit. Member 0 keeps
/// the range [0, 2^40), so a 1-shard cluster hands out exactly the ids a
/// bare server would — part of the byte-identity contract.
constexpr int kMemberShift = 40;

int64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

StatusOr<std::unique_ptr<ClusterServer>> ClusterServer::Create(
    const ClusterConfig& config) {
  if (config.initial_shards < 1) {
    return InvalidArgumentError("cluster needs at least one shard");
  }
  if (config.cross_shard_budget < 0) {
    return InvalidArgumentError("cross_shard_budget must be >= 0");
  }
  std::unique_ptr<ClusterServer> cluster(new ClusterServer(config));
  for (int member = 0; member < config.initial_shards; ++member) {
    auto shard = cluster->BuildShard(member);
    if (!shard.ok()) {
      return shard.status();
    }
    cluster->shards_.push_back(
        Shard{member, std::move(shard).value(), /*retiring=*/false});
  }
  return cluster;
}

ClusterServer::ClusterServer(const ClusterConfig& config)
    : config_(config), map_(config.initial_shards) {}

ServerConfig ClusterServer::ShardConfig(int member) const {
  ServerConfig shard_config = config_.shard;
  shard_config.first_stream_id = static_cast<int64_t>(member) << kMemberShift;
  // File-backed shards each get their own directory: a shard owns its disk
  // farm, and member ids are never reused, so the suffix keeps crashed and
  // replacement shards from clobbering each other's block files.
  if (shard_config.storage_backend.starts_with("file:") ||
      shard_config.storage_backend.starts_with("uring:")) {
    shard_config.storage_backend +=
        "/shard" + std::to_string(member);
  }
  return shard_config;
}

StatusOr<std::unique_ptr<CmServer>> ClusterServer::BuildShard(
    int member) const {
  return CmServer::Create(ShardConfig(member));
}

int ClusterServer::ShardIndexOf(int member) const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].member == member) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int ClusterServer::MemberOfStreamId(int64_t stream_id) {
  return static_cast<int>(stream_id >> kMemberShift);
}

std::vector<int> ClusterServer::members() const {
  std::vector<int> ids;
  ids.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    ids.push_back(shard.member);
  }
  return ids;
}

const CmServer* ClusterServer::shard(int id) const {
  const int index = ShardIndexOf(id);
  return index < 0 ? nullptr : shards_[static_cast<size_t>(index)].server.get();
}

CmServer* ClusterServer::shard(int id) {
  const int index = ShardIndexOf(id);
  return index < 0 ? nullptr : shards_[static_cast<size_t>(index)].server.get();
}

int ClusterServer::OwnerOf(ObjectId object) const {
  const auto it = owner_.find(object);
  return it == owner_.end() ? -1 : it->second;
}

Status ClusterServer::AddObject(ObjectId id, int64_t num_blocks,
                                int64_t bitrate_weight) {
  if (owner_.contains(id)) {
    return AlreadyExistsError("object already in the cluster");
  }
  const int target = map_.MemberOf(static_cast<uint64_t>(id));
  CmServer* server = shard(target);
  SCADDAR_CHECK(server != nullptr);
  SCADDAR_RETURN_IF_ERROR(server->AddObject(id, num_blocks, bitrate_weight));
  owner_[id] = target;
  objects_.push_back(id);
  return OkStatus();
}

Status ClusterServer::RemoveObject(ObjectId id) {
  const auto it = owner_.find(id);
  if (it == owner_.end()) {
    return NotFoundError("object not in the cluster");
  }
  CmServer* server = shard(it->second);
  SCADDAR_CHECK(server != nullptr);
  SCADDAR_RETURN_IF_ERROR(server->RemoveObject(id));
  migrator_.Cancel(id);
  owner_.erase(it);
  objects_.erase(std::find(objects_.begin(), objects_.end(), id));
  return OkStatus();
}

StatusOr<int64_t> ClusterServer::StartStream(ObjectId object) {
  const auto it = owner_.find(object);
  if (it == owner_.end()) {
    return NotFoundError("object not in the cluster");
  }
  CmServer* server = shard(it->second);
  SCADDAR_CHECK(server != nullptr);
  return server->StartStream(object);
}

Status ClusterServer::PauseStream(int64_t stream_id) {
  CmServer* server = shard(MemberOfStreamId(stream_id));
  if (server == nullptr) {
    return NotFoundError("stream's shard is gone");
  }
  return server->PauseStream(stream_id);
}

Status ClusterServer::ResumeStream(int64_t stream_id) {
  CmServer* server = shard(MemberOfStreamId(stream_id));
  if (server == nullptr) {
    return NotFoundError("stream's shard is gone");
  }
  return server->ResumeStream(stream_id);
}

Status ClusterServer::SeekStream(int64_t stream_id, BlockIndex block) {
  CmServer* server = shard(MemberOfStreamId(stream_id));
  if (server == nullptr) {
    return NotFoundError("stream's shard is gone");
  }
  return server->SeekStream(stream_id, block);
}

ClusterRoundMetrics ClusterServer::Tick() {
  return RunRound(/*serialize=*/false, nullptr);
}

ClusterRoundMetrics ClusterServer::TickSerialized(ClusterTickTiming* timing) {
  return RunRound(/*serialize=*/true, timing);
}

ClusterRoundMetrics ClusterServer::RunRound(bool serialize,
                                            ClusterTickTiming* timing) {
  const int64_t n = static_cast<int64_t>(shards_.size());
  published_.Publish(ClusterEpoch{round_, map_.epoch(),
                                  static_cast<int32_t>(n), 0});
  std::vector<RoundMetrics> per_shard(static_cast<size_t>(n));

  if (serialize || n == 1) {
    if (timing != nullptr) {
      timing->shard_ns.assign(static_cast<size_t>(n), 0);
    }
    for (int64_t i = 0; i < n; ++i) {
      const auto start = std::chrono::steady_clock::now();
      per_shard[static_cast<size_t>(i)] =
          shards_[static_cast<size_t>(i)].server->Tick();
      if (timing != nullptr) {
        timing->shard_ns[static_cast<size_t>(i)] = ElapsedNs(start);
      }
    }
  } else {
    if (pool_ == nullptr) {
      const int hw = std::max(1u, std::thread::hardware_concurrency());
      pool_ = std::make_unique<ThreadPool>(
          std::min(static_cast<int>(n), hw));
    }
    const uint64_t pinned = published_.sequence();
    pool_->ParallelFor(0, n, [this, pinned, &per_shard](int64_t begin,
                                                        int64_t end) {
      const ClusterEpoch epoch = published_.Read();
      SCADDAR_CHECK(epoch.round == round_);
      SCADDAR_CHECK(epoch.map_epoch == map_.epoch());
      SCADDAR_CHECK(published_.sequence() == pinned);
      for (int64_t i = begin; i < end; ++i) {
        per_shard[static_cast<size_t>(i)] =
            shards_[static_cast<size_t>(i)].server->Tick();
      }
    });
    SCADDAR_CHECK(published_.sequence() == pinned);
  }

  // Serial tail, shard creation order throughout: merge, cross-shard pump,
  // commits, retirement. This is the only section where shards interact, so
  // the pooled and serialized paths cannot diverge.
  const auto serial_start = std::chrono::steady_clock::now();
  ClusterRoundMetrics metrics;
  metrics.round = round_;
  for (const RoundMetrics& m : per_shard) {
    metrics.active_streams += m.active_streams;
    metrics.requests += m.requests;
    metrics.served += m.served;
    metrics.hiccups += m.hiccups;
    metrics.migrated += m.migrated;
    metrics.pending_migration += m.pending_migration;
    metrics.retiring_disks += m.retiring_disks;
  }
  const CrossShardRound pump = migrator_.AdvanceRound(config_.cross_shard_budget);
  for (const ObjectTransfer& transfer : pump.ready_to_commit) {
    CommitTransfer(transfer);
  }
  metrics.cross_shard_blocks = pump.blocks_copied;
  metrics.cross_shard_commits =
      static_cast<int64_t>(pump.ready_to_commit.size());
  RetireDrainedShards();
  metrics.pending_transfers = migrator_.pending_transfers();
  if (timing != nullptr) {
    timing->serial_ns = ElapsedNs(serial_start);
  }
  ++round_;
  return metrics;
}

void ClusterServer::CommitTransfer(const ObjectTransfer& transfer) {
  CmServer* source = shard(transfer.from);
  CmServer* dest = shard(transfer.to);
  SCADDAR_CHECK(source != nullptr && dest != nullptr);
  const auto object = source->catalog().GetObject(transfer.object);
  SCADDAR_CHECK(object.ok());

  // The atomic flip: detach the sessions, materialize the replica, move
  // ownership, resume the sessions, drop the source replica. All serial,
  // all this round — no observer ever sees two owners or none.
  const std::vector<StreamHandoff> handoffs =
      source->DetachStreamsFor(transfer.object);
  SCADDAR_CHECK(dest->AddObject(transfer.object, object.value().num_blocks,
                                object.value().bitrate_weight)
                    .ok());
  owner_[transfer.object] = transfer.to;
  for (const StreamHandoff& handoff : handoffs) {
    const auto id = dest->StartStream(transfer.object);
    if (!id.ok()) {
      ++handoff_rejects_;  // Destination admission is full: session drops.
      continue;
    }
    SCADDAR_CHECK(dest->SeekStream(id.value(), handoff.next_block).ok());
    if (handoff.paused) {
      SCADDAR_CHECK(dest->PauseStream(id.value()).ok());
    }
  }
  SCADDAR_CHECK(source->RemoveObject(transfer.object).ok());
}

void ClusterServer::RetireDrainedShards() {
  bool any_retiring = false;
  for (const Shard& shard : shards_) {
    any_retiring = any_retiring || shard.retiring;
  }
  if (!any_retiring) {
    return;
  }
  std::unordered_map<int, int64_t> owned;
  for (const auto& [object, member] : owner_) {
    ++owned[member];
  }
  std::vector<Shard> keep;
  keep.reserve(shards_.size());
  for (Shard& shard : shards_) {
    const bool drained = shard.retiring && owned[shard.member] == 0 &&
                         shard.server->active_streams() == 0 &&
                         shard.server->migration().idle();
    if (!drained) {
      keep.push_back(std::move(shard));
    }
  }
  shards_.swap(keep);
}

StatusOr<int> ClusterServer::AddServerShard() {
  const int member = map_.AddMember();
  auto server = BuildShard(member);
  if (!server.ok()) {
    SCADDAR_CHECK(map_.RemoveMember(member).ok());
    return server.status();
  }
  shards_.push_back(Shard{member, std::move(server).value(),
                          /*retiring=*/false});
  ReconcileRouting();
  return member;
}

Status ClusterServer::RemoveServerShard(int shard_id) {
  const int index = ShardIndexOf(shard_id);
  if (index < 0 || !map_.HasMember(shard_id)) {
    return NotFoundError("no such routed shard");
  }
  if (map_.num_seats() < 2) {
    return FailedPreconditionError("cannot remove the last shard");
  }
  SCADDAR_RETURN_IF_ERROR(map_.RemoveMember(shard_id));
  shards_[static_cast<size_t>(index)].retiring = true;
  ReconcileRouting();
  return OkStatus();
}

Status ClusterServer::ScaleAddDisks(int shard_id, int64_t count) {
  CmServer* server = shard(shard_id);
  if (server == nullptr) {
    return NotFoundError("no such shard");
  }
  return server->ScaleAdd(count);
}

Status ClusterServer::ScaleRemoveDisks(int shard_id,
                                       std::vector<DiskSlot> slots) {
  CmServer* server = shard(shard_id);
  if (server == nullptr) {
    return NotFoundError("no such shard");
  }
  return server->ScaleRemove(std::move(slots));
}

Status ClusterServer::ConfigureGovernor(int bits, double eps,
                                        double cov_threshold) {
  // Validate once before touching any shard, so a bad knob set leaves every
  // shard's governor untouched (the per-shard calls below cannot fail).
  SCADDAR_RETURN_IF_ERROR(AdaptiveReorgDriver::Create(
                              bits, eps, cov_threshold,
                              config_.shard.reorg_check_every)
                              .status());
  for (Shard& entry : shards_) {
    SCADDAR_RETURN_IF_ERROR(
        entry.server->ConfigureGovernor(bits, eps, cov_threshold));
  }
  config_.shard.governor_bits = bits;
  config_.shard.governor_eps = eps;
  config_.shard.reorg_cov_threshold = cov_threshold;
  return OkStatus();
}

void ClusterServer::SetAutoReorg(bool enabled) {
  for (Shard& entry : shards_) {
    entry.server->SetAutoReorg(enabled);
  }
  config_.shard.auto_reorg = enabled;
}

int64_t ClusterServer::TotalReorgTriggers() const {
  int64_t total = 0;
  for (const Shard& entry : shards_) {
    total += static_cast<int64_t>(entry.server->reorg_triggers().size());
  }
  return total;
}

void ClusterServer::ReconcileRouting() {
  for (const ObjectId object : objects_) {
    const int owner = owner_.at(object);
    const int target = map_.MemberOf(static_cast<uint64_t>(object));
    if (migrator_.HasTransfer(object)) {
      // Point the queued intent at the latest target; a transfer retargeted
      // back home cancels.
      migrator_.Retarget(object, target);
      continue;
    }
    if (target == owner) {
      continue;
    }
    const CmServer* server = shard(owner);
    SCADDAR_CHECK(server != nullptr);
    const auto meta = server->catalog().GetObject(object);
    SCADDAR_CHECK(meta.ok());
    migrator_.Enqueue(ObjectTransfer{object, owner, target,
                                     meta.value().num_blocks,
                                     meta.value().bitrate_weight, 0});
  }
}

Status ClusterServer::VerifyIntegrity() const {
  for (const Shard& entry : shards_) {
    if (map_.HasMember(entry.member) == entry.retiring) {
      return InternalError("retiring flag disagrees with the shard map");
    }
  }
  for (const ObjectId object : objects_) {
    const int owner = owner_.at(object);
    const CmServer* owner_server = shard(owner);
    if (owner_server == nullptr) {
      return InternalError("object owned by a destroyed shard");
    }
    if (!owner_server->catalog().Contains(object)) {
      return InternalError("owner shard is missing the object");
    }
    for (const Shard& other : shards_) {
      if (other.member != owner && other.server->catalog().Contains(object)) {
        return InternalError("object replicated on a non-owner shard");
      }
    }
    const int target = map_.MemberOf(static_cast<uint64_t>(object));
    if (target != owner && migrator_.TargetOf(object) != target) {
      return InternalError("route target diverges with no queued transfer");
    }
  }
  for (const Shard& entry : shards_) {
    if (entry.server->migration().idle()) {
      SCADDAR_RETURN_IF_ERROR(entry.server->VerifyIntegrity());
    }
  }
  return OkStatus();
}

bool ClusterServer::MigrationIdle() const {
  if (!migrator_.idle()) {
    return false;
  }
  for (const Shard& entry : shards_) {
    // A retiring shard still alive means the scale-down has not finished,
    // even with an empty transfer queue (its last round of bookkeeping —
    // destruction — happens in a Tick's serial tail).
    if (entry.retiring || !entry.server->migration().idle()) {
      return false;
    }
  }
  return true;
}

int64_t ClusterServer::active_streams() const {
  int64_t total = 0;
  for (const Shard& entry : shards_) {
    total += entry.server->active_streams();
  }
  return total;
}

int64_t ClusterServer::total_served() const {
  int64_t total = 0;
  for (const Shard& entry : shards_) {
    total += entry.server->total_served();
  }
  return total;
}

int64_t ClusterServer::total_hiccups() const {
  int64_t total = 0;
  for (const Shard& entry : shards_) {
    total += entry.server->total_hiccups();
  }
  return total;
}

int64_t ClusterServer::completed_streams() const {
  int64_t total = 0;
  for (const Shard& entry : shards_) {
    total += entry.server->completed_streams();
  }
  return total;
}

std::vector<int64_t> ClusterServer::StartupLatencies() const {
  std::vector<int64_t> all;
  for (const Shard& entry : shards_) {
    const std::vector<int64_t>& shard_latencies =
        entry.server->startup_latencies();
    all.insert(all.end(), shard_latencies.begin(), shard_latencies.end());
  }
  return all;
}

ClusterRoundMetrics ClusterServer::DriveRound(TrafficEngine& engine) {
  std::vector<const Stream*> view;
  for (const Shard& entry : shards_) {
    for (const Stream& stream : entry.server->streams()) {
      view.push_back(&stream);
    }
  }
  const RoundTraffic traffic = engine.NextRound(round_, view);
  for (const ObjectId object : traffic.arrivals) {
    if (!StartStream(object).ok()) {
      engine.RecordRejectedArrival();
    }
  }
  for (const int64_t id : traffic.pauses) {
    SCADDAR_CHECK(PauseStream(id).ok());
  }
  for (const int64_t id : traffic.resumes) {
    SCADDAR_CHECK(ResumeStream(id).ok());
  }
  for (const SeekEvent& seek : traffic.seeks) {
    SCADDAR_CHECK(SeekStream(seek.stream_id, seek.block).ok());
  }
  return Tick();
}

StatusOr<std::string> ClusterServer::EncodeCheckpoint() const {
  ClusterSnapshot snapshot;
  snapshot.seats = map_.seats();
  snapshot.next_member = map_.next_member();
  snapshot.map_epoch = map_.epoch();
  snapshot.owners.reserve(objects_.size());
  for (const ObjectId object : objects_) {
    snapshot.owners.emplace_back(object, owner_.at(object));
  }
  snapshot.shards.reserve(shards_.size());
  for (const Shard& entry : shards_) {
    snapshot.shards.push_back(ClusterSnapshotShard{
        entry.member, entry.retiring,
        EncodeServerSnapshot(entry.server->CaptureState())});
  }
  snapshot.round = round_;
  snapshot.handoff_rejects = handoff_rejects_;
  return EncodeClusterSnapshot(snapshot);
}

Status ClusterServer::WriteCheckpoint(CheckpointManager& manager,
                                      int level) const {
  SCADDAR_ASSIGN_OR_RETURN(const std::string document, EncodeCheckpoint());
  return manager.Write(document, level, round_).status();
}

StatusOr<std::unique_ptr<ClusterServer>> ClusterServer::RestoreFromCheckpoint(
    const ClusterConfig& config, CheckpointManager& manager) {
  SCADDAR_ASSIGN_OR_RETURN(const LoadedCheckpoint loaded,
                           manager.LoadNewestValid());
  SCADDAR_ASSIGN_OR_RETURN(const ClusterSnapshot snapshot,
                           DecodeClusterSnapshot(loaded.payload));
  if (config.cross_shard_budget < 0) {
    return InvalidArgumentError("cross_shard_budget must be >= 0");
  }
  SCADDAR_ASSIGN_OR_RETURN(
      ShardMap map, ShardMap::FromParts(snapshot.seats, snapshot.next_member,
                                        snapshot.map_epoch));
  std::unique_ptr<ClusterServer> cluster(new ClusterServer(config));
  cluster->map_ = std::move(map);
  for (const ClusterSnapshotShard& entry : snapshot.shards) {
    if (cluster->map_.HasMember(entry.member) == entry.retiring) {
      return InvalidArgumentError(
          "checkpointed retiring flag disagrees with the shard map");
    }
    auto server = CmServer::FromSnapshotDocument(
        cluster->ShardConfig(entry.member), entry.document);
    if (!server.ok()) {
      return server.status();
    }
    cluster->shards_.push_back(
        Shard{entry.member, std::move(server).value(), entry.retiring});
  }
  for (const auto& [object, member] : snapshot.owners) {
    if (cluster->ShardIndexOf(member) < 0) {
      return InvalidArgumentError("checkpointed owner is not a known shard");
    }
    if (!cluster->owner_.emplace(object, member).second) {
      return InvalidArgumentError("duplicate object in checkpointed owners");
    }
    cluster->objects_.push_back(object);
  }
  cluster->round_ = snapshot.round;
  cluster->handoff_rejects_ = snapshot.handoff_rejects;
  // In-flight transfers were volatile state: any partially copied blocks on
  // a destination died with the process, so re-deriving the queue from
  // route-vs-owner divergence restarts each interrupted transfer cleanly.
  cluster->ReconcileRouting();
  return cluster;
}

}  // namespace scaddar
