#include "core/compiled_log.h"

#include <algorithm>

#include "util/simd.h"

namespace scaddar {

namespace internal {
namespace {

// Portable step-major kernel; the oracle every vector backend must match
// bit-for-bit. The renumber-table index `r` is mathematically < n_prev
// (FastDiv64 is exact), so the in-range DCHECK only fires on a corrupted
// program — it is what keeps the unchecked table load (and the vector
// backends' gathered twin) from silently reading out of bounds.
void AdvanceScalar(const CompiledStep* steps, const int32_t* renumber,
                   uint64_t* xs, size_t count, size_t from, size_t to) {
  for (size_t j = from; j < to; ++j) {
    const CompiledStep& step = steps[j];
    const FastDiv64 div_prev = step.div_prev;
    const FastDiv64 div_cur = step.div_cur;
    const uint64_t n_prev = static_cast<uint64_t>(step.n_prev);
    const uint64_t n_cur = static_cast<uint64_t>(step.n_cur);
    if (step.is_add) {
      for (size_t i = 0; i < count; ++i) {
        const auto [q, r] = div_prev.DivMod(xs[i]);
        const auto [q_hi, target] = div_cur.DivMod(q);
        xs[i] = q_hi * n_cur + (target < n_prev ? r : target);
      }
    } else {
      const int32_t* table = renumber + step.renumber_offset;
      for (size_t i = 0; i < count; ++i) {
        const auto [q, r] = div_prev.DivMod(xs[i]);
        SCADDAR_DCHECK(r < n_prev);
        const int32_t renumbered = table[r];
        xs[i] = renumbered == kRemovedSlot
                    ? q
                    : q * n_cur + static_cast<uint64_t>(renumbered);
      }
    }
  }
}

void ModScalar(const FastDiv64& div, uint64_t* xs, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    xs[i] = div.Mod(xs[i]);
  }
}

}  // namespace

const KernelBackend& ScalarBackend() {
  static const KernelBackend backend{"scalar", &AdvanceScalar, &ModScalar};
  return backend;
}

const KernelBackend& ActiveBackend() {
  const SimdLevel level = ActiveSimdLevel();
  if (level >= SimdLevel::kAvx512) {
    if (const KernelBackend* avx512 = Avx512Backend()) {
      return *avx512;
    }
  }
  if (level >= SimdLevel::kAvx2) {
    if (const KernelBackend* avx2 = Avx2Backend()) {
      return *avx2;
    }
  }
  return ScalarBackend();
}

}  // namespace internal

CompiledLog::CompiledLog(const OpLog& log) {
  steps_.reserve(static_cast<size_t>(log.num_ops()));
  for (Epoch j = 1; j <= log.num_ops(); ++j) {
    const ScalingOp& op = log.op(j);
    internal::CompiledStep step;
    step.n_prev = log.disks_after(j - 1);
    step.n_cur = log.disks_after(j);
    step.div_prev = FastDiv64(static_cast<uint64_t>(step.n_prev));
    step.div_cur = FastDiv64(static_cast<uint64_t>(step.n_cur));
    step.is_add = op.is_add();
    if (op.is_remove()) {
      step.renumber_offset = static_cast<int32_t>(renumber_.size());
      for (DiskSlot slot = 0; slot < step.n_prev; ++slot) {
        renumber_.push_back(op.Removes(slot)
                                ? internal::kRemovedSlot
                                : static_cast<int32_t>(op.NewSlot(slot)));
      }
    }
    steps_.push_back(step);
  }
  physical_ = log.physical_disks();
  initial_disks_ = log.initial_disks();
  current_disks_ = log.current_disks();
  div_current_ = FastDiv64(static_cast<uint64_t>(current_disks_));
  source_revision_ = log.revision();
}

int64_t CompiledLog::disks_after(Epoch j) const {
  SCADDAR_CHECK(j >= 0 && j <= num_ops());
  return j == 0 ? initial_disks_ : steps_[static_cast<size_t>(j - 1)].n_cur;
}

uint64_t CompiledLog::FinalX(uint64_t x0, Epoch from) const {
  SCADDAR_CHECK(from >= 0 && from <= num_ops());
  uint64_t x = x0;
  for (size_t j = static_cast<size_t>(from); j < steps_.size(); ++j) {
    const internal::CompiledStep& step = steps_[j];
    const auto [q, r] = step.div_prev.DivMod(x);
    if (step.is_add) {
      // Eq. 5: stay on r if (q mod n_cur) < n_prev, else move to it.
      const auto [q_hi, target] = step.div_cur.DivMod(q);
      x = q_hi * static_cast<uint64_t>(step.n_cur) +
          (target < static_cast<uint64_t>(step.n_prev) ? r : target);
    } else {
      // Eq. 3 with the precompiled new() table.
      SCADDAR_DCHECK(r < static_cast<uint64_t>(step.n_prev));
      const int32_t renumbered =
          renumber_[static_cast<size_t>(step.renumber_offset) +
                    static_cast<size_t>(r)];
      x = renumbered == internal::kRemovedSlot
              ? q
              : q * static_cast<uint64_t>(step.n_cur) +
                    static_cast<uint64_t>(renumbered);
    }
  }
  return x;
}

void CompiledLog::AdvanceXBatch(std::span<uint64_t> xs, Epoch from,
                                Epoch to) const {
  SCADDAR_CHECK(from >= 0 && from <= to && to <= num_ops());
  if (xs.empty() || from == to) {
    return;
  }
  internal::ActiveBackend().advance(steps_.data(), renumber_.data(),
                                    xs.data(), xs.size(),
                                    static_cast<size_t>(from),
                                    static_cast<size_t>(to));
}

DiskSlot CompiledLog::LocateSlot(uint64_t x0, Epoch from) const {
  return static_cast<DiskSlot>(div_current_.Mod(FinalX(x0, from)));
}

PhysicalDiskId CompiledLog::LocatePhysical(uint64_t x0, Epoch from) const {
  return physical_[static_cast<size_t>(LocateSlot(x0, from))];
}

void CompiledLog::LocateSlotBatch(std::span<const uint64_t> x0,
                                  std::span<DiskSlot> out, Epoch from) const {
  SCADDAR_CHECK(x0.size() == out.size());
  if (out.empty()) {
    return;
  }
  // DiskSlot is int64_t, the signed twin of the chain's uint64_t — the
  // output buffer doubles as evaluation scratch (signed/unsigned aliasing
  // of the same width is well-defined).
  uint64_t* scratch = reinterpret_cast<uint64_t*>(out.data());
  std::copy(x0.begin(), x0.end(), scratch);
  AdvanceXBatch(std::span<uint64_t>(scratch, out.size()), from, num_ops());
  internal::ActiveBackend().mod(div_current_, scratch, out.size());
}

void CompiledLog::LocatePhysicalBatch(std::span<const uint64_t> x0,
                                      std::span<PhysicalDiskId> out,
                                      Epoch from) const {
  LocateSlotBatch(x0, out, from);
  for (PhysicalDiskId& slot : out) {
    slot = physical_[static_cast<size_t>(slot)];
  }
}

}  // namespace scaddar
