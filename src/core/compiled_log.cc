#include "core/compiled_log.h"

#include "util/intmath.h"

namespace scaddar {

CompiledLog::CompiledLog(const OpLog& log) {
  steps_.reserve(static_cast<size_t>(log.num_ops()));
  for (Epoch j = 1; j <= log.num_ops(); ++j) {
    const ScalingOp& op = log.op(j);
    Step step;
    step.n_prev = log.disks_after(j - 1);
    step.n_cur = log.disks_after(j);
    step.is_add = op.is_add();
    if (op.is_remove()) {
      step.renumber_offset = static_cast<int32_t>(renumber_.size());
      for (DiskSlot slot = 0; slot < step.n_prev; ++slot) {
        renumber_.push_back(op.Removes(slot)
                                ? kRemovedSlot
                                : static_cast<int32_t>(op.NewSlot(slot)));
      }
    }
    steps_.push_back(step);
  }
  physical_ = log.physical_disks();
  current_disks_ = log.current_disks();
}

uint64_t CompiledLog::FinalX(uint64_t x0, Epoch from) const {
  SCADDAR_CHECK(from >= 0 && from <= num_ops());
  uint64_t x = x0;
  for (size_t j = static_cast<size_t>(from); j < steps_.size(); ++j) {
    const Step& step = steps_[j];
    const auto [q, r] = DivMod(x, static_cast<uint64_t>(step.n_prev));
    if (step.is_add) {
      // Eq. 5: stay on r if (q mod n_cur) < n_prev, else move to it.
      const auto [q_hi, target] = DivMod(q, static_cast<uint64_t>(step.n_cur));
      x = q_hi * static_cast<uint64_t>(step.n_cur) +
          (target < static_cast<uint64_t>(step.n_prev) ? r : target);
    } else {
      // Eq. 3 with the precompiled new() table.
      const int32_t renumbered =
          renumber_[static_cast<size_t>(step.renumber_offset) +
                    static_cast<size_t>(r)];
      x = renumbered == kRemovedSlot
              ? q
              : q * static_cast<uint64_t>(step.n_cur) +
                    static_cast<uint64_t>(renumbered);
    }
  }
  return x;
}

DiskSlot CompiledLog::LocateSlot(uint64_t x0, Epoch from) const {
  return static_cast<DiskSlot>(FinalX(x0, from) %
                               static_cast<uint64_t>(current_disks_));
}

PhysicalDiskId CompiledLog::LocatePhysical(uint64_t x0, Epoch from) const {
  return physical_[static_cast<size_t>(LocateSlot(x0, from))];
}

}  // namespace scaddar
