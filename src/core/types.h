#ifndef SCADDAR_CORE_TYPES_H_
#define SCADDAR_CORE_TYPES_H_

#include <cstdint>

namespace scaddar {

/// Index of a block within one CM object (the paper's `i`).
using BlockIndex = int64_t;

/// Identifier of a CM object (the paper's `m`).
using ObjectId = int64_t;

/// A *logical disk slot* in `[0, Nj)`: the disk numbers the REMAP algebra
/// operates on. Slots are renumbered (compacted) by removal operations.
using DiskSlot = int64_t;

/// A stable identifier of a physical disk. Never reused: disks added later
/// get fresh ids, so physical ids outlive slot renumbering.
using PhysicalDiskId = int64_t;

/// Index of a scaling operation; epoch `j` means "after j scaling
/// operations" (epoch 0 is the initial state, Definition 3.3).
using Epoch = int64_t;

/// Globally unique reference to one block of one object.
struct BlockRef {
  ObjectId object = 0;
  BlockIndex block = 0;

  friend bool operator==(const BlockRef&, const BlockRef&) = default;
};

}  // namespace scaddar

#endif  // SCADDAR_CORE_TYPES_H_
