#include "core/bounds.h"

#include <cmath>

#include "util/intmath.h"

namespace scaddar {

double UnfairnessCoefficient(uint64_t r, int64_t n) {
  SCADDAR_CHECK(r >= 1);
  SCADDAR_CHECK(n >= 1);
  const uint64_t buckets = r / static_cast<uint64_t>(n);
  if (buckets == 0) {
    return HUGE_VAL;
  }
  return 1.0 / static_cast<double>(buckets);
}

uint64_t RangeAfter(uint64_t r0, const OpLog& log, Epoch k) {
  SCADDAR_CHECK(k >= 0 && k <= log.num_ops());
  uint64_t range = r0;
  for (Epoch j = 0; j < k; ++j) {
    range /= static_cast<uint64_t>(log.disks_after(j));
  }
  return range;
}

double UnfairnessAfter(uint64_t r0, const OpLog& log) {
  const Epoch k = log.num_ops();
  const uint64_t range = RangeAfter(r0, log, k);
  if (range == 0) {
    return HUGE_VAL;
  }
  return UnfairnessCoefficient(range, log.disks_after(k));
}

int64_t RuleOfThumbMaxOps(int bits, double eps, double avg_disks) {
  SCADDAR_CHECK(bits >= 1 && bits <= 64);
  SCADDAR_CHECK(eps > 0.0);
  SCADDAR_CHECK(avg_disks > 1.0);
  const double numerator = static_cast<double>(bits) - std::log2(1.0 / eps);
  if (numerator <= 0.0) {
    return 0;
  }
  const auto k_plus_1 =
      static_cast<int64_t>(std::floor(numerator / std::log2(avg_disks)));
  return k_plus_1 >= 1 ? k_plus_1 - 1 : 0;
}

int64_t ExactMaxOpsForConstantDisks(uint64_t r0, int64_t n, double eps) {
  SCADDAR_CHECK(n >= 2);
  SCADDAR_CHECK(eps > 0.0);
  const long double limit =
      static_cast<long double>(r0) *
      (static_cast<long double>(eps) / (1.0L + static_cast<long double>(eps)));
  long double pi = static_cast<long double>(n);  // Pi_0 = N0.
  int64_t k = 0;
  while (pi * static_cast<long double>(n) <= limit) {
    pi *= static_cast<long double>(n);
    ++k;
  }
  return k;
}

}  // namespace scaddar
