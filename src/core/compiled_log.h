#ifndef SCADDAR_CORE_COMPILED_LOG_H_
#define SCADDAR_CORE_COMPILED_LOG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/op_log.h"
#include "core/types.h"
#include "util/intmath.h"

namespace scaddar {

/// A snapshot of an `OpLog` compiled into a flat remap program for fast
/// `AF()` evaluation. Three optimizations over replaying through `Mapper`:
///
///  - each removal's `new()` renumbering is precompiled into a dense
///    `old_slot -> new_slot` array (one load instead of a binary search
///    over the removed-slot set per step);
///  - the per-step parameters (N_{j-1}, N_j, kind) live in one contiguous
///    array, so the hot loop touches no per-op vectors;
///  - every division by N_{j-1}/N_j uses a precomputed multiply-shift
///    reciprocal (`FastDiv64`), turning the paper's "series of inexpensive
///    mod and div functions" into multiplies.
///
/// The compiled program is immutable: recompile after appending operations
/// (ops are rare; lookups are millions/sec). `source_revision()` echoes
/// `OpLog::revision()` at compile time so callers can detect staleness with
/// one integer compare. `bench_lookup` quantifies the speedup;
/// `compiled_log_test` proves bit-exact equivalence with `Mapper`.
///
/// ## Batch evaluation
///
/// The `*Batch` entry points evaluate a contiguous span of blocks
/// *step-major*: the outer loop walks compiled steps, the inner loop walks
/// the block array. Per-step parameters (N's, reciprocals, renumber-table
/// base pointer) then stay in registers across the whole span, a removal's
/// renumber table stays hot in cache while every block consults it, and the
/// inner loop is a branch-light sequence the compiler can unroll. All
/// blocks of one batch must share a `from` epoch (objects are written at
/// one epoch, so natural batches — an object's blocks, a planner shard —
/// already do); this is the same-epoch fast path: no per-element epoch
/// check anywhere in the hot loop. `bench_remap_throughput` measures the
/// step-major speedup over per-call replay.
class CompiledLog {
 public:
  /// Compiles a snapshot of `log`. O(sum of N over removal ops) time/space.
  explicit CompiledLog(const OpLog& log);

  /// `X_j` at the final epoch for a chain starting at epoch `from`
  /// (checked: 0 <= from <= num_ops).
  uint64_t FinalX(uint64_t x0, Epoch from = 0) const;

  /// Final logical slot for a chain starting at epoch `from`.
  DiskSlot LocateSlot(uint64_t x0, Epoch from = 0) const;

  /// Final physical disk for a chain starting at epoch `from`.
  PhysicalDiskId LocatePhysical(uint64_t x0, Epoch from = 0) const;

  /// In-place step-major advance: replays compiled steps `from+1 .. to`
  /// over every element of `xs` (checked: 0 <= from <= to <= num_ops).
  /// `xs[i]` must hold `X_from(i)` on entry and holds `X_to(i)` on return.
  /// The planners use the intermediate-epoch form to read a chain at both
  /// `j-1` and `j` in one pass.
  void AdvanceXBatch(std::span<uint64_t> xs, Epoch from, Epoch to) const;

  /// `xs[i] := FinalX(xs[i], from)` for the whole span, step-major.
  void FinalXBatch(std::span<uint64_t> xs, Epoch from = 0) const {
    AdvanceXBatch(xs, from, num_ops());
  }

  /// `out[i] := LocateSlot(x0[i], from)` (sizes must match, checked).
  /// `out` doubles as the scratch space, so the batch needs no allocation.
  void LocateSlotBatch(std::span<const uint64_t> x0, std::span<DiskSlot> out,
                       Epoch from = 0) const;

  /// `out[i] := LocatePhysical(x0[i], from)` (sizes must match, checked).
  void LocatePhysicalBatch(std::span<const uint64_t> x0,
                           std::span<PhysicalDiskId> out,
                           Epoch from = 0) const;

  int64_t num_ops() const { return static_cast<int64_t>(steps_.size()); }
  int64_t current_disks() const { return current_disks_; }

  /// `N_j` for `j` in [0, num_ops()] (checked) — the compiled mirror of
  /// `OpLog::disks_after`, so batch callers never touch the log.
  int64_t disks_after(Epoch j) const;

  /// `OpLog::revision()` of the source log when this snapshot was compiled.
  int64_t source_revision() const { return source_revision_; }

 private:
  struct Step {
    int64_t n_prev = 0;
    int64_t n_cur = 0;
    FastDiv64 div_prev;  // Reciprocal of n_prev.
    FastDiv64 div_cur;   // Reciprocal of n_cur.
    bool is_add = false;
    // For removals: dense renumbering, size n_prev; kRemovedSlot for slots
    // the op removes (their blocks take the q-path).
    int32_t renumber_offset = -1;  // Index into renumber_ or -1 for adds.
  };

  static constexpr int32_t kRemovedSlot = -1;

  std::vector<Step> steps_;
  std::vector<int32_t> renumber_;  // Concatenated renumber tables.
  std::vector<PhysicalDiskId> physical_;  // Final slot -> physical id.
  int64_t initial_disks_ = 0;
  int64_t current_disks_ = 0;
  FastDiv64 div_current_;  // Reciprocal of current_disks_.
  int64_t source_revision_ = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_CORE_COMPILED_LOG_H_
