#ifndef SCADDAR_CORE_COMPILED_LOG_H_
#define SCADDAR_CORE_COMPILED_LOG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/op_log.h"
#include "core/types.h"
#include "util/intmath.h"

namespace scaddar {

namespace internal {

/// One compiled scaling operation: the flattened step layout every kernel
/// backend consumes. Plain data so a backend can be a free function over
/// raw arrays (the AVX2 backend lives in its own -mavx2 translation unit
/// and cannot be a member of `CompiledLog`).
struct CompiledStep {
  int64_t n_prev = 0;
  int64_t n_cur = 0;
  FastDiv64 div_prev;  // Reciprocal of n_prev.
  FastDiv64 div_cur;   // Reciprocal of n_cur.
  bool is_add = false;
  // For removals: dense renumbering, size n_prev; kRemovedSlot for slots
  // the op removes (their blocks take the q-path).
  int32_t renumber_offset = -1;  // Index into the renumber array, -1 for adds.
};

inline constexpr int32_t kRemovedSlot = -1;

/// One kernel backend of the batch REMAP engine. Every backend is bit-exact
/// with every other: `advance` replays compiled steps [from, to) over
/// `xs[0, count)` step-major, `mod` reduces each element modulo the
/// divisor. The scalar backend is always available; vector backends are
/// present only when the binary was built with their instruction set and
/// execute only when the CPU reports it at runtime (`ActiveSimdLevel`).
struct KernelBackend {
  using AdvanceFn = void (*)(const CompiledStep* steps,
                             const int32_t* renumber, uint64_t* xs,
                             size_t count, size_t from, size_t to);
  using ModFn = void (*)(const FastDiv64& div, uint64_t* xs, size_t count);

  const char* name = "";
  AdvanceFn advance = nullptr;
  ModFn mod = nullptr;
};

/// The portable backend (compiled_log.cc).
const KernelBackend& ScalarBackend();

/// The AVX2 backend (compiled_log_simd.cc), or nullptr when the binary was
/// built without AVX2 codegen (non-x86 target, or a compiler without
/// -mavx2). Null here is a build property; whether the host CPU can run it
/// is `DetectedSimdLevel()`.
const KernelBackend* Avx2Backend();

/// The AVX-512 backend (compiled_log_simd512.cc), or nullptr when the
/// binary was built without AVX-512F/DQ codegen. Same build-vs-runtime
/// split as `Avx2Backend`.
const KernelBackend* Avx512Backend();

/// The backend matching `ActiveSimdLevel()` right now, falling back to
/// the best lower level whose backend is present in this binary.
const KernelBackend& ActiveBackend();

/// Conservative upper bound on any chain value after `step`, given that
/// every value was <= `bound` before it. Kernels track this per step to
/// switch to narrow (32-bit-value) lane math once the whole span must fit
/// in 32 bits: each step divides by the disk count, so after a handful of
/// steps every x is small no matter how large X_0 was. The bound never
/// underestimates, so the narrow path is only taken when exact.
inline uint64_t AdvanceValueBound(const CompiledStep& step, uint64_t bound) {
  const uint64_t n_prev = static_cast<uint64_t>(step.n_prev);
  const uint64_t n_cur = static_cast<uint64_t>(step.n_cur);
  const uint64_t q = bound / n_prev;
  // Add: x' = (q div n_cur)*n_cur + slot, slot < n_cur. Remove: x' is q
  // (removed slot) or q*n_cur + renumbered with renumbered < n_cur; the
  // moved form dominates. Neither multiply can overflow: both products are
  // <= the pre-division value.
  const uint64_t base = step.is_add ? (q / n_cur) * n_cur : q * n_cur;
  return base + (n_cur - 1);
}

}  // namespace internal

/// A snapshot of an `OpLog` compiled into a flat remap program for fast
/// `AF()` evaluation. Three optimizations over replaying through `Mapper`:
///
///  - each removal's `new()` renumbering is precompiled into a dense
///    `old_slot -> new_slot` array (one load instead of a binary search
///    over the removed-slot set per step);
///  - the per-step parameters (N_{j-1}, N_j, kind) live in one contiguous
///    array, so the hot loop touches no per-op vectors;
///  - every division by N_{j-1}/N_j uses a precomputed multiply-shift
///    reciprocal (`FastDiv64`), turning the paper's "series of inexpensive
///    mod and div functions" into multiplies.
///
/// The compiled program is immutable: recompile after appending operations
/// (ops are rare; lookups are millions/sec). `source_revision()` echoes
/// `OpLog::revision()` at compile time so callers can detect staleness with
/// one integer compare. `bench_lookup` quantifies the speedup;
/// `compiled_log_test` proves bit-exact equivalence with `Mapper`.
///
/// ## Batch evaluation
///
/// The `*Batch` entry points evaluate a contiguous span of blocks
/// *step-major*: the outer loop walks compiled steps, the inner loop walks
/// the block array. Per-step parameters (N's, reciprocals, renumber-table
/// base pointer) then stay in registers across the whole span, a removal's
/// renumber table stays hot in cache while every block consults it, and the
/// inner loop is a branch-light sequence the compiler can unroll. All
/// blocks of one batch must share a `from` epoch (objects are written at
/// one epoch, so natural batches — an object's blocks, a planner shard —
/// already do); this is the same-epoch fast path: no per-element epoch
/// check anywhere in the hot loop. `bench_remap_throughput` measures the
/// step-major speedup over per-call replay.
///
/// The batch entry points are backed by interchangeable kernel backends
/// (`internal::KernelBackend`) selected at runtime by CPU feature detection
/// (`util/simd.h`): an AVX2 backend evaluates 4 chains per 64-bit lane
/// group, an AVX-512 backend 8, and the portable scalar backend is both the
/// fallback and the equivalence oracle. The vector backends additionally
/// switch to cheaper narrow lane math once a per-step value bound
/// (`internal::AdvanceValueBound`) proves every chain value fits in 32
/// bits. All backends are bit-identical (`tests/simd_kernel_test.cc`);
/// `SCADDAR_FORCE_SCALAR_KERNELS=1` pins the scalar backend for testing.
/// Empty spans are no-ops.
class CompiledLog {
 public:
  /// Compiles a snapshot of `log`. O(sum of N over removal ops) time/space.
  explicit CompiledLog(const OpLog& log);

  /// `X_j` at the final epoch for a chain starting at epoch `from`
  /// (checked: 0 <= from <= num_ops).
  uint64_t FinalX(uint64_t x0, Epoch from = 0) const;

  /// Final logical slot for a chain starting at epoch `from`.
  DiskSlot LocateSlot(uint64_t x0, Epoch from = 0) const;

  /// Final physical disk for a chain starting at epoch `from`.
  PhysicalDiskId LocatePhysical(uint64_t x0, Epoch from = 0) const;

  /// In-place step-major advance: replays compiled steps `from+1 .. to`
  /// over every element of `xs` (checked: 0 <= from <= to <= num_ops).
  /// `xs[i]` must hold `X_from(i)` on entry and holds `X_to(i)` on return.
  /// The planners use the intermediate-epoch form to read a chain at both
  /// `j-1` and `j` in one pass.
  void AdvanceXBatch(std::span<uint64_t> xs, Epoch from, Epoch to) const;

  /// `xs[i] := FinalX(xs[i], from)` for the whole span, step-major.
  void FinalXBatch(std::span<uint64_t> xs, Epoch from = 0) const {
    AdvanceXBatch(xs, from, num_ops());
  }

  /// `out[i] := LocateSlot(x0[i], from)` (sizes must match, checked).
  /// `out` doubles as the scratch space, so the batch needs no allocation.
  void LocateSlotBatch(std::span<const uint64_t> x0, std::span<DiskSlot> out,
                       Epoch from = 0) const;

  /// `out[i] := LocatePhysical(x0[i], from)` (sizes must match, checked).
  void LocatePhysicalBatch(std::span<const uint64_t> x0,
                           std::span<PhysicalDiskId> out,
                           Epoch from = 0) const;

  int64_t num_ops() const { return static_cast<int64_t>(steps_.size()); }
  int64_t current_disks() const { return current_disks_; }

  /// `N_j` for `j` in [0, num_ops()] (checked) — the compiled mirror of
  /// `OpLog::disks_after`, so batch callers never touch the log.
  int64_t disks_after(Epoch j) const;

  /// `OpLog::revision()` of the source log when this snapshot was compiled.
  int64_t source_revision() const { return source_revision_; }

 private:
  std::vector<internal::CompiledStep> steps_;
  std::vector<int32_t> renumber_;  // Concatenated renumber tables.
  std::vector<PhysicalDiskId> physical_;  // Final slot -> physical id.
  int64_t initial_disks_ = 0;
  int64_t current_disks_ = 0;
  FastDiv64 div_current_;  // Reciprocal of current_disks_.
  int64_t source_revision_ = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_CORE_COMPILED_LOG_H_
