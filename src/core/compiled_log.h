#ifndef SCADDAR_CORE_COMPILED_LOG_H_
#define SCADDAR_CORE_COMPILED_LOG_H_

#include <cstdint>
#include <vector>

#include "core/op_log.h"
#include "core/types.h"

namespace scaddar {

/// A snapshot of an `OpLog` compiled into a flat remap program for fast
/// `AF()` evaluation. Two optimizations over replaying through `Mapper`:
///
///  - each removal's `new()` renumbering is precompiled into a dense
///    `old_slot -> new_slot` array (one load instead of a binary search
///    over the removed-slot set per step);
///  - the per-step parameters (N_{j-1}, N_j, kind) live in one contiguous
///    array, so the hot loop touches no per-op vectors.
///
/// The compiled program is immutable: recompile after appending operations
/// (ops are rare; lookups are millions/sec). `bench_lookup` quantifies the
/// speedup; `compiled_log_test` proves bit-exact equivalence with `Mapper`.
class CompiledLog {
 public:
  /// Compiles a snapshot of `log`. O(sum of N over removal ops) time/space.
  explicit CompiledLog(const OpLog& log);

  /// `X_j` at the final epoch for a chain starting at epoch `from`
  /// (checked: 0 <= from <= num_ops).
  uint64_t FinalX(uint64_t x0, Epoch from = 0) const;

  /// Final logical slot for a chain starting at epoch `from`.
  DiskSlot LocateSlot(uint64_t x0, Epoch from = 0) const;

  /// Final physical disk for a chain starting at epoch `from`.
  PhysicalDiskId LocatePhysical(uint64_t x0, Epoch from = 0) const;

  int64_t num_ops() const { return static_cast<int64_t>(steps_.size()); }
  int64_t current_disks() const { return current_disks_; }

 private:
  struct Step {
    int64_t n_prev = 0;
    int64_t n_cur = 0;
    bool is_add = false;
    // For removals: dense renumbering, size n_prev; kRemovedSlot for slots
    // the op removes (their blocks take the q-path).
    int32_t renumber_offset = -1;  // Index into renumber_ or -1 for adds.
  };

  static constexpr int32_t kRemovedSlot = -1;

  std::vector<Step> steps_;
  std::vector<int32_t> renumber_;  // Concatenated renumber tables.
  std::vector<PhysicalDiskId> physical_;  // Final slot -> physical id.
  int64_t current_disks_ = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_CORE_COMPILED_LOG_H_
