#ifndef SCADDAR_CORE_SCALING_OP_H_
#define SCADDAR_CORE_SCALING_OP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.h"
#include "util/statusor.h"

namespace scaddar {

/// One scaling operation (Definition 3.3): the addition or removal of a disk
/// group. An addition appends `add_count` new slots at the top of the slot
/// range (`N_{j-1} .. N_j - 1`); a removal deletes a set of existing slots
/// and compacts the survivors, which is the paper's `new()` renumbering.
///
/// A `ScalingOp` is a value: it does not know `N_{j-1}` — `OpLog::Append`
/// validates it against the epoch it is applied to.
class ScalingOp {
 public:
  enum class Kind { kAdd, kRemove };

  /// Creates a disk-group addition of `count` disks (> 0).
  static StatusOr<ScalingOp> Add(int64_t count);

  /// Creates a disk-group removal of the given slots (non-empty; duplicates
  /// rejected; slots must be non-negative). Slots are stored sorted.
  static StatusOr<ScalingOp> Remove(std::vector<DiskSlot> slots);

  ScalingOp(const ScalingOp&) = default;
  ScalingOp& operator=(const ScalingOp&) = default;
  ScalingOp(ScalingOp&&) noexcept = default;
  ScalingOp& operator=(ScalingOp&&) noexcept = default;

  Kind kind() const { return kind_; }
  bool is_add() const { return kind_ == Kind::kAdd; }
  bool is_remove() const { return kind_ == Kind::kRemove; }

  /// Number of disks added (kAdd only, checked).
  int64_t add_count() const;

  /// Sorted removed slots (kRemove only, checked).
  const std::vector<DiskSlot>& removed_slots() const;

  /// Signed change in disk count: +add_count or -removed_slots().size().
  int64_t delta() const;

  /// True iff this removal removes `slot` (kRemove only, checked).
  bool Removes(DiskSlot slot) const;

  /// The paper's `new()`: the compacted index of a surviving slot after this
  /// removal, i.e. `slot - #removed_slots_below(slot)`. `slot` must survive
  /// (checked). kRemove only.
  DiskSlot NewSlot(DiskSlot slot) const;

  /// Inverse of `NewSlot`: the pre-removal slot whose compacted index is
  /// `new_slot` (>= 0, checked to be valid given the removal set).
  DiskSlot OldSlot(DiskSlot new_slot) const;

  /// Compact text form: "A3" or "R1,4,7". Round-trips through `Parse`.
  std::string ToString() const;
  static StatusOr<ScalingOp> Parse(std::string_view text);

  friend bool operator==(const ScalingOp& a, const ScalingOp& b) {
    return a.kind_ == b.kind_ && a.add_count_ == b.add_count_ &&
           a.removed_slots_ == b.removed_slots_;
  }

 private:
  ScalingOp() = default;

  Kind kind_ = Kind::kAdd;
  int64_t add_count_ = 0;
  std::vector<DiskSlot> removed_slots_;
};

}  // namespace scaddar

#endif  // SCADDAR_CORE_SCALING_OP_H_
