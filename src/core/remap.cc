#include "core/remap.h"

#include "util/intmath.h"

namespace scaddar {

uint64_t RemapAdd(uint64_t x_prev, int64_t n_prev, int64_t n_cur) {
  SCADDAR_DCHECK(n_prev > 0);
  SCADDAR_DCHECK(n_cur > n_prev);
  const uint64_t un_prev = static_cast<uint64_t>(n_prev);
  const uint64_t un_cur = static_cast<uint64_t>(n_cur);
  const auto [q, r] = DivMod(x_prev, un_prev);
  const auto [q_hi, target] = DivMod(q, un_cur);
  if (target < un_prev) {
    return q_hi * un_cur + r;  // Eq. 5a: block stays on slot r.
  }
  return q_hi * un_cur + target;  // Eq. 5b: block moves to added slot.
}

uint64_t RemapRemove(uint64_t x_prev, int64_t n_prev, int64_t n_cur,
                     const ScalingOp& op) {
  SCADDAR_DCHECK(op.is_remove());
  SCADDAR_DCHECK(n_prev > 0);
  SCADDAR_DCHECK(n_cur ==
                 n_prev - static_cast<int64_t>(op.removed_slots().size()));
  SCADDAR_DCHECK(n_cur > 0);
  const auto [q, r] = DivMod(x_prev, static_cast<uint64_t>(n_prev));
  const auto slot = static_cast<DiskSlot>(r);
  if (!op.Removes(slot)) {
    // Eq. 3a: stay on the compacted slot, keep q as future randomness.
    return q * static_cast<uint64_t>(n_cur) +
           static_cast<uint64_t>(op.NewSlot(slot));
  }
  return q;  // Eq. 3b: move to slot (q mod n_cur), uniform over survivors.
}

int64_t NaiveAddSlot(uint64_t x0, int64_t slot_prev, int64_t n_prev,
                     int64_t n_cur) {
  SCADDAR_DCHECK(n_prev > 0);
  SCADDAR_DCHECK(n_cur > n_prev);
  SCADDAR_DCHECK(slot_prev >= 0 && slot_prev < n_prev);
  const auto target =
      static_cast<int64_t>(x0 % static_cast<uint64_t>(n_cur));
  // Eq. 2: move iff X0 mod N_j points into the added range [n_prev, n_cur).
  return target >= n_prev ? target : slot_prev;
}

int64_t NaiveRemoveSlot(uint64_t x0, int64_t slot_prev, int64_t n_prev,
                        int64_t n_cur, const ScalingOp& op) {
  SCADDAR_DCHECK(op.is_remove());
  SCADDAR_DCHECK(n_prev > 0);
  SCADDAR_DCHECK(n_cur > 0);
  SCADDAR_DCHECK(slot_prev >= 0 && slot_prev < n_prev);
  if (op.Removes(slot_prev)) {
    return static_cast<int64_t>(x0 % static_cast<uint64_t>(n_cur));
  }
  return op.NewSlot(slot_prev);
}

}  // namespace scaddar
