// The AVX2 kernel backend of the batch REMAP engine: 4 chains per 64-bit
// lane group, step-major like the scalar backend, bit-identical results.
//
// This is the only core translation unit compiled with -mavx2 (set per-file
// in src/CMakeLists.txt), so the rest of the binary stays runnable on any
// x86-64; whether these kernels execute is decided at runtime by
// `ActiveSimdLevel()`. On targets built without AVX2 codegen the backend
// compiles to `Avx2Backend() == nullptr` and the dispatcher never leaves
// scalar.

#include "core/compiled_log.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <limits>

#include "util/simd_avx2.h"

namespace scaddar::internal {
namespace {

/// True when a step may use the narrow lane math: every chain value is
/// proven < 2^32 (so quotients are too) and both divisors fit 32 bits (so
/// the remainder/rebase products are single `_mm256_mul_epu32`s).
bool NarrowStep(const CompiledStep& step, uint64_t bound) {
  constexpr uint64_t kNarrowLimit = uint64_t{1} << 32;
  return bound < kNarrowLimit &&
         static_cast<uint64_t>(step.n_prev) < kNarrowLimit &&
         static_cast<uint64_t>(step.n_cur) < kNarrowLimit;
}

// One compiled ADD step over the leading 4-lane groups. Lane math notes:
//  - divisions are `avx2::Div4`, the exact lane-wise `FastDiv64`;
//  - products (`q * N_j`) use `MulLo64`, which wraps mod 2^64 exactly like
//    the scalar multiply — or a single 32x32 multiply in narrow mode;
//  - `target < n_prev` uses the signed 64-bit compare: both sides are disk
//    counts / slot numbers far below 2^63, so signed and unsigned agree.
template <bool kNarrow>
void AddStepAvx2(const CompiledStep& step, uint64_t* xs, size_t vec_count) {
  const avx2::Div4 div_prev(step.div_prev);
  const avx2::Div4 div_cur(step.div_cur);
  const __m256i n_prev = _mm256_set1_epi64x(step.n_prev);
  const __m256i n_cur = _mm256_set1_epi64x(step.n_cur);
  for (size_t i = 0; i < vec_count; i += 4) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + i));
    const __m256i q = kNarrow ? div_prev.DivNarrow(x) : div_prev.Div(x);
    const __m256i r =
        kNarrow ? div_prev.ModNarrow(x, q) : div_prev.Mod(x, q);
    const __m256i q_hi = kNarrow ? div_cur.DivNarrow(q) : div_cur.Div(q);
    const __m256i target =
        kNarrow ? div_cur.ModNarrow(q, q_hi) : div_cur.Mod(q, q_hi);
    // Eq. 5 select: stay on r when (q mod n_cur) < n_prev.
    const __m256i stays = _mm256_cmpgt_epi64(n_prev, target);
    const __m256i slot = _mm256_blendv_epi8(target, r, stays);
    const __m256i rebased = kNarrow ? _mm256_mul_epu32(q_hi, n_cur)
                                    : avx2::MulLo64(q_hi, n_cur);
    x = _mm256_add_epi64(rebased, slot);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(xs + i), x);
  }
}

// One compiled REMOVE step over the leading 4-lane groups. The renumber
// table is read with a 32-bit gather indexed by the 64-bit remainder
// lanes, then sign-extended, so the removed-slot sentinel (-1) survives as
// an all-ones lane for the select.
template <bool kNarrow>
void RemoveStepAvx2(const CompiledStep& step, const int32_t* renumber,
                    uint64_t* xs, size_t vec_count) {
  const avx2::Div4 div_prev(step.div_prev);
  const int32_t* table = renumber + step.renumber_offset;
  const __m256i n_cur = _mm256_set1_epi64x(step.n_cur);
  const __m256i removed = _mm256_set1_epi64x(kRemovedSlot);
  for (size_t i = 0; i < vec_count; i += 4) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + i));
    const __m256i q = kNarrow ? div_prev.DivNarrow(x) : div_prev.Div(x);
    const __m256i r =
        kNarrow ? div_prev.ModNarrow(x, q) : div_prev.Mod(x, q);
#ifndef NDEBUG
    // The gather below is unchecked; a corrupted program (bad n_prev /
    // truncated renumber table) must die here, not read out of bounds.
    alignas(32) uint64_t r_lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(r_lanes), r);
    for (const uint64_t lane : r_lanes) {
      SCADDAR_CHECK(lane < static_cast<uint64_t>(step.n_prev));
    }
#endif
    const __m256i renumbered =
        _mm256_cvtepi32_epi64(_mm256_i64gather_epi32(table, r, 4));
    const __m256i moved = _mm256_add_epi64(
        kNarrow ? _mm256_mul_epu32(q, n_cur) : avx2::MulLo64(q, n_cur),
        renumbered);
    const __m256i is_removed = _mm256_cmpeq_epi64(renumbered, removed);
    x = _mm256_blendv_epi8(moved, q, is_removed);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(xs + i), x);
  }
}

// Replays compiled steps [from, to) over xs[0, count) — the vector twin of
// `AdvanceScalar`. The leading 4-lane groups go through AVX2; the trailing
// `count mod 4` elements take the scalar kernel over the same step range
// (elements are independent, so order between the two sweeps is
// irrelevant). A per-step value bound (`AdvanceValueBound`) switches each
// step to the narrow variants once every chain value provably fits 32
// bits — for deep op logs that is most steps, since every step divides by
// the disk count.
void AdvanceAvx2(const CompiledStep* steps, const int32_t* renumber,
                 uint64_t* xs, size_t count, size_t from, size_t to) {
  const size_t vec_count = count & ~size_t{3};
  uint64_t bound = std::numeric_limits<uint64_t>::max();
  for (size_t j = from; j < to && vec_count != 0; ++j) {
    const CompiledStep& step = steps[j];
    const bool narrow = NarrowStep(step, bound);
    if (step.is_add) {
      narrow ? AddStepAvx2<true>(step, xs, vec_count)
             : AddStepAvx2<false>(step, xs, vec_count);
    } else {
      narrow ? RemoveStepAvx2<true>(step, renumber, xs, vec_count)
             : RemoveStepAvx2<false>(step, renumber, xs, vec_count);
    }
    bound = AdvanceValueBound(step, bound);
  }
  if (vec_count < count) {
    ScalarBackend().advance(steps, renumber, xs + vec_count,
                            count - vec_count, from, to);
  }
}

void ModAvx2(const FastDiv64& div, uint64_t* xs, size_t count) {
  const size_t vec_count = count & ~size_t{3};
  const avx2::Div4 div4(div);
  for (size_t i = 0; i < vec_count; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + i));
    const __m256i q = div4.Div(x);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(xs + i), div4.Mod(x, q));
  }
  for (size_t i = vec_count; i < count; ++i) {
    xs[i] = div.Mod(xs[i]);
  }
}

}  // namespace

const KernelBackend* Avx2Backend() {
  static const KernelBackend backend{"avx2", &AdvanceAvx2, &ModAvx2};
  return &backend;
}

}  // namespace scaddar::internal

#else  // !defined(__AVX2__)

namespace scaddar::internal {

const KernelBackend* Avx2Backend() { return nullptr; }

}  // namespace scaddar::internal

#endif  // defined(__AVX2__)
