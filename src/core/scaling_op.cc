#include "core/scaling_op.h"

#include <algorithm>
#include <charconv>

namespace scaddar {

StatusOr<ScalingOp> ScalingOp::Add(int64_t count) {
  if (count <= 0) {
    return InvalidArgumentError("disk group addition must add >= 1 disk");
  }
  ScalingOp op;
  op.kind_ = Kind::kAdd;
  op.add_count_ = count;
  return op;
}

StatusOr<ScalingOp> ScalingOp::Remove(std::vector<DiskSlot> slots) {
  if (slots.empty()) {
    return InvalidArgumentError("disk group removal must name >= 1 slot");
  }
  std::sort(slots.begin(), slots.end());
  if (slots.front() < 0) {
    return InvalidArgumentError("removed slot indices must be >= 0");
  }
  if (std::adjacent_find(slots.begin(), slots.end()) != slots.end()) {
    return InvalidArgumentError("duplicate slot in disk group removal");
  }
  ScalingOp op;
  op.kind_ = Kind::kRemove;
  op.removed_slots_ = std::move(slots);
  return op;
}

int64_t ScalingOp::add_count() const {
  SCADDAR_CHECK(kind_ == Kind::kAdd);
  return add_count_;
}

const std::vector<DiskSlot>& ScalingOp::removed_slots() const {
  SCADDAR_CHECK(kind_ == Kind::kRemove);
  return removed_slots_;
}

int64_t ScalingOp::delta() const {
  return kind_ == Kind::kAdd
             ? add_count_
             : -static_cast<int64_t>(removed_slots_.size());
}

bool ScalingOp::Removes(DiskSlot slot) const {
  SCADDAR_CHECK(kind_ == Kind::kRemove);
  return std::binary_search(removed_slots_.begin(), removed_slots_.end(),
                            slot);
}

DiskSlot ScalingOp::NewSlot(DiskSlot slot) const {
  SCADDAR_CHECK(kind_ == Kind::kRemove);
  SCADDAR_CHECK(!Removes(slot));
  const auto below = std::lower_bound(removed_slots_.begin(),
                                      removed_slots_.end(), slot) -
                     removed_slots_.begin();
  return slot - below;
}

DiskSlot ScalingOp::OldSlot(DiskSlot new_slot) const {
  SCADDAR_CHECK(kind_ == Kind::kRemove);
  SCADDAR_CHECK(new_slot >= 0);
  // Walk the sorted removal set: each removed slot at or below the candidate
  // shifts the old index up by one.
  DiskSlot old_slot = new_slot;
  for (const DiskSlot removed : removed_slots_) {
    if (removed <= old_slot) {
      ++old_slot;
    } else {
      break;
    }
  }
  return old_slot;
}

std::string ScalingOp::ToString() const {
  if (kind_ == Kind::kAdd) {
    return "A" + std::to_string(add_count_);
  }
  std::string out = "R";
  for (size_t i = 0; i < removed_slots_.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += std::to_string(removed_slots_[i]);
  }
  return out;
}

StatusOr<ScalingOp> ScalingOp::Parse(std::string_view text) {
  if (text.empty()) {
    return InvalidArgumentError("empty scaling op");
  }
  const char tag = text.front();
  std::string_view body = text.substr(1);
  if (tag == 'A') {
    int64_t count = 0;
    const auto [ptr, ec] =
        std::from_chars(body.data(), body.data() + body.size(), count);
    if (ec != std::errc() || ptr != body.data() + body.size()) {
      return InvalidArgumentError("malformed add op");
    }
    return Add(count);
  }
  if (tag == 'R') {
    std::vector<DiskSlot> slots;
    while (!body.empty()) {
      const size_t comma = body.find(',');
      const std::string_view token = body.substr(0, comma);
      int64_t slot = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), slot);
      if (ec != std::errc() || ptr != token.data() + token.size()) {
        return InvalidArgumentError("malformed remove op");
      }
      slots.push_back(slot);
      if (comma == std::string_view::npos) {
        break;
      }
      body = body.substr(comma + 1);
      if (body.empty()) {
        return InvalidArgumentError("trailing comma in remove op");
      }
    }
    return Remove(std::move(slots));
  }
  return InvalidArgumentError("scaling op must start with 'A' or 'R'");
}

}  // namespace scaddar
