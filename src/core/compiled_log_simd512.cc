// The AVX-512 kernel backend of the batch REMAP engine: 8 chains per
// 64-bit lane group, step-major like the other backends, bit-identical
// results. Structure mirrors compiled_log_simd.cc (the AVX2 backend) with
// twice the lanes, native 64-bit low multiplies (vpmullq, AVX-512DQ) and
// mask-register selects.
//
// This is the only core translation unit compiled with -mavx512f
// -mavx512dq (set per-file in src/CMakeLists.txt); whether these kernels
// execute is decided at runtime by `ActiveSimdLevel()`. On targets built
// without AVX-512 codegen the backend compiles to
// `Avx512Backend() == nullptr` and the dispatcher falls back to AVX2 or
// scalar.

#include "core/compiled_log.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

#include <limits>

#include "util/simd_avx512.h"

namespace scaddar::internal {
namespace {

/// True when a step may use the narrow lane math: every chain value is
/// proven < 2^32 (so quotients are too) and both divisors fit 32 bits.
bool NarrowStep(const CompiledStep& step, uint64_t bound) {
  constexpr uint64_t kNarrowLimit = uint64_t{1} << 32;
  return bound < kNarrowLimit &&
         static_cast<uint64_t>(step.n_prev) < kNarrowLimit &&
         static_cast<uint64_t>(step.n_cur) < kNarrowLimit;
}

// One compiled ADD step over the leading 8-lane groups. Same lane math as
// the AVX2 backend (see compiled_log_simd.cc); the Eq. 5 select uses a
// mask compare + masked blend.
template <bool kNarrow>
void AddStepAvx512(const CompiledStep& step, uint64_t* xs, size_t vec_count) {
  const avx512::Div8 div_prev(step.div_prev);
  const avx512::Div8 div_cur(step.div_cur);
  const __m512i n_prev = _mm512_set1_epi64(step.n_prev);
  const __m512i n_cur = _mm512_set1_epi64(step.n_cur);
  for (size_t i = 0; i < vec_count; i += 8) {
    __m512i x = _mm512_loadu_si512(xs + i);
    const __m512i q = kNarrow ? div_prev.DivNarrow(x) : div_prev.Div(x);
    const __m512i r =
        kNarrow ? div_prev.ModNarrow(x, q) : div_prev.Mod(x, q);
    const __m512i q_hi = kNarrow ? div_cur.DivNarrow(q) : div_cur.Div(q);
    const __m512i target =
        kNarrow ? div_cur.ModNarrow(q, q_hi) : div_cur.Mod(q, q_hi);
    // Eq. 5 select: stay on r when (q mod n_cur) < n_prev.
    const __mmask8 stays = _mm512_cmpgt_epi64_mask(n_prev, target);
    const __m512i slot = _mm512_mask_blend_epi64(stays, target, r);
    const __m512i rebased = kNarrow ? _mm512_mul_epu32(q_hi, n_cur)
                                    : _mm512_mullo_epi64(q_hi, n_cur);
    x = _mm512_add_epi64(rebased, slot);
    _mm512_storeu_si512(xs + i, x);
  }
}

// One compiled REMOVE step over the leading 8-lane groups. The renumber
// table is read with a 32-bit gather indexed by the 64-bit remainder
// lanes, then sign-extended, so the removed-slot sentinel (-1) survives as
// an all-ones lane for the masked select.
template <bool kNarrow>
void RemoveStepAvx512(const CompiledStep& step, const int32_t* renumber,
                      uint64_t* xs, size_t vec_count) {
  const avx512::Div8 div_prev(step.div_prev);
  const int32_t* table = renumber + step.renumber_offset;
  const __m512i n_cur = _mm512_set1_epi64(step.n_cur);
  const __m512i removed = _mm512_set1_epi64(kRemovedSlot);
  for (size_t i = 0; i < vec_count; i += 8) {
    __m512i x = _mm512_loadu_si512(xs + i);
    const __m512i q = kNarrow ? div_prev.DivNarrow(x) : div_prev.Div(x);
    const __m512i r =
        kNarrow ? div_prev.ModNarrow(x, q) : div_prev.Mod(x, q);
#ifndef NDEBUG
    // The gather below is unchecked; a corrupted program (bad n_prev /
    // truncated renumber table) must die here, not read out of bounds.
    alignas(64) uint64_t r_lanes[8];
    _mm512_store_si512(r_lanes, r);
    for (const uint64_t lane : r_lanes) {
      SCADDAR_CHECK(lane < static_cast<uint64_t>(step.n_prev));
    }
#endif
    const __m512i renumbered =
        _mm512_cvtepi32_epi64(_mm512_i64gather_epi32(r, table, 4));
    const __m512i moved = _mm512_add_epi64(
        kNarrow ? _mm512_mul_epu32(q, n_cur) : _mm512_mullo_epi64(q, n_cur),
        renumbered);
    const __mmask8 is_removed = _mm512_cmpeq_epi64_mask(renumbered, removed);
    x = _mm512_mask_blend_epi64(is_removed, moved, q);
    _mm512_storeu_si512(xs + i, x);
  }
}

// Replays compiled steps [from, to) over xs[0, count) — the vector twin of
// `AdvanceScalar`. The leading 8-lane groups go through AVX-512; the
// trailing `count mod 8` elements take the scalar kernel over the same
// step range. A per-step value bound (`AdvanceValueBound`) switches each
// step to the narrow variants once every chain value provably fits 32
// bits.
void AdvanceAvx512(const CompiledStep* steps, const int32_t* renumber,
                   uint64_t* xs, size_t count, size_t from, size_t to) {
  const size_t vec_count = count & ~size_t{7};
  uint64_t bound = std::numeric_limits<uint64_t>::max();
  for (size_t j = from; j < to && vec_count != 0; ++j) {
    const CompiledStep& step = steps[j];
    const bool narrow = NarrowStep(step, bound);
    if (step.is_add) {
      narrow ? AddStepAvx512<true>(step, xs, vec_count)
             : AddStepAvx512<false>(step, xs, vec_count);
    } else {
      narrow ? RemoveStepAvx512<true>(step, renumber, xs, vec_count)
             : RemoveStepAvx512<false>(step, renumber, xs, vec_count);
    }
    bound = AdvanceValueBound(step, bound);
  }
  if (vec_count < count) {
    ScalarBackend().advance(steps, renumber, xs + vec_count,
                            count - vec_count, from, to);
  }
}

void ModAvx512(const FastDiv64& div, uint64_t* xs, size_t count) {
  const size_t vec_count = count & ~size_t{7};
  const avx512::Div8 div8(div);
  for (size_t i = 0; i < vec_count; i += 8) {
    const __m512i x = _mm512_loadu_si512(xs + i);
    const __m512i q = div8.Div(x);
    _mm512_storeu_si512(xs + i, div8.Mod(x, q));
  }
  for (size_t i = vec_count; i < count; ++i) {
    xs[i] = div.Mod(xs[i]);
  }
}

}  // namespace

const KernelBackend* Avx512Backend() {
  static const KernelBackend backend{"avx512", &AdvanceAvx512, &ModAvx512};
  return &backend;
}

}  // namespace scaddar::internal

#else  // !(defined(__AVX512F__) && defined(__AVX512DQ__))

namespace scaddar::internal {

const KernelBackend* Avx512Backend() { return nullptr; }

}  // namespace scaddar::internal

#endif  // defined(__AVX512F__) && defined(__AVX512DQ__)
