#ifndef SCADDAR_CORE_OP_LOG_H_
#define SCADDAR_CORE_OP_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/scaling_op.h"
#include "core/types.h"
#include "util/epoch.h"
#include "util/intmath.h"
#include "util/statusor.h"

namespace scaddar {

/// The complete history of scaling operations on a disk array — the only
/// state SCADDAR needs to locate any block (contrast with a per-block
/// directory of millions of entries; this is the "storage structure for
/// recording scaling operations" from Section 1).
///
/// The log tracks, per epoch `j`:
///  - `N_j`, the disk count (Definition 3.3);
///  - the slot -> physical-disk-id mapping (slots are compacted on removal,
///    physical ids are stable and never reused);
///  - the running product `Pi_k = N0 * N1 * ... * Nk` from Lemma 4.2/4.3,
///    used to decide when the shrinking random range forces a full
///    redistribution.
class OpLog {
 public:
  /// Creates a log for an array that starts with `n0` disks; fails if
  /// `n0 <= 0`. Initial physical ids are `0 .. n0-1`.
  static StatusOr<OpLog> Create(int64_t n0);

  /// Creates a log whose epoch-0 disks carry the given (distinct,
  /// non-negative) physical ids. Used when restarting placement over an
  /// existing array — e.g. the full-redistribution fallback, where the new
  /// epoch 0 must address the disks that are already spinning.
  static StatusOr<OpLog> CreateWithIds(std::vector<PhysicalDiskId> ids);

  OpLog(const OpLog&) = default;
  OpLog& operator=(const OpLog&) = default;
  OpLog(OpLog&&) noexcept = default;
  OpLog& operator=(OpLog&&) noexcept = default;

  /// Appends scaling operation `j = num_ops()+1`. Validates the op against
  /// the current epoch: removals must name existing slots and must leave at
  /// least one disk. On success updates `N_j`, the physical mapping and
  /// `Pi`.
  Status Append(const ScalingOp& op);

  /// Number of scaling operations performed (the paper's `j`).
  int64_t num_ops() const { return static_cast<int64_t>(ops_.size()); }

  /// Monotonic counter bumped by every successful `Append`. Lets holders of
  /// a compiled snapshot (`CompiledLog`) detect staleness with one integer
  /// compare instead of recompiling defensively; unlike `num_ops()` it is
  /// explicitly a change-detection token, not a semantic quantity.
  ///
  /// Concurrency: the read is an acquire-load and `Append`'s bump a release
  /// store (`RevisionCounter`), so sharded serving workers that validate a
  /// cursor window against the revision observe every log write the bump
  /// published. Appends themselves stay single-writer: the runtime applies
  /// scaling ops only between rounds, while no worker reads.
  int64_t revision() const { return revision_.Load(); }

  /// `N_j` for `j` in `[0, num_ops()]` (checked).
  int64_t disks_after(Epoch j) const;

  /// `N_0`.
  int64_t initial_disks() const { return disk_counts_.front(); }

  /// Current disk count `N_{num_ops()}`.
  int64_t current_disks() const { return disk_counts_.back(); }

  /// The `j`-th operation, 1-based as in the paper (`j` in [1, num_ops()],
  /// checked).
  const ScalingOp& op(Epoch j) const;

  /// Slot -> physical disk id at epoch `j` (checked). The vector has
  /// `disks_after(j)` entries.
  const std::vector<PhysicalDiskId>& physical_disks_at(Epoch j) const;

  /// Slot -> physical disk id for the current epoch.
  const std::vector<PhysicalDiskId>& physical_disks() const {
    return physical_by_epoch_.back();
  }

  /// The next physical id an addition would assign (ids are monotonic).
  PhysicalDiskId next_physical_id() const { return next_physical_id_; }

  /// Running product `Pi_k = N0 * ... * Nk` (saturating).
  const SaturatingProduct& pi() const { return pi_; }

  /// Lemma 4.3 precondition: `Pi_k <= R0 * eps / (1 + eps)`. While this
  /// holds, the unfairness coefficient stays below `eps`. `r0` is the
  /// initial random range (2^b - 1) and `eps` must be > 0 (checked).
  bool SatisfiesTolerance(uint64_t r0, double eps) const;

  /// True iff appending `op` would break `SatisfiesTolerance(r0, eps)` —
  /// the implementation of the paper's "find out whether the next operation
  /// will lead to a violation of the precondition in Lemma 4.3".
  bool WouldExceedTolerance(const ScalingOp& op, uint64_t r0,
                            double eps) const;

  /// Text serialization "N0;op1;op2;..."; round-trips via `Deserialize`.
  std::string Serialize() const;
  static StatusOr<OpLog> Deserialize(std::string_view text);

  friend bool operator==(const OpLog& a, const OpLog& b) {
    return a.disk_counts_ == b.disk_counts_ && a.ops_ == b.ops_;
  }

 private:
  explicit OpLog(int64_t n0);

  std::vector<ScalingOp> ops_;            // ops_[j-1] is operation j.
  std::vector<int64_t> disk_counts_;      // disk_counts_[j] is N_j.
  std::vector<std::vector<PhysicalDiskId>> physical_by_epoch_;
  PhysicalDiskId next_physical_id_ = 0;
  SaturatingProduct pi_;
  RevisionCounter revision_;
};

}  // namespace scaddar

#endif  // SCADDAR_CORE_OP_LOG_H_
