#include "core/redistribution.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>

#include "core/compiled_log.h"

namespace scaddar {

MovementStats MovePlan::ToMovementStats(int64_t n_prev, int64_t n_cur) const {
  MovementStats stats;
  stats.total_blocks = blocks_considered_;
  stats.moved_blocks = num_moves();
  stats.moved_fraction =
      blocks_considered_ == 0
          ? 0.0
          : static_cast<double>(num_moves()) /
                static_cast<double>(blocks_considered_);
  stats.theoretical_fraction = TheoreticalMoveFraction(n_prev, n_cur);
  if (stats.theoretical_fraction == 0.0) {
    stats.overhead_ratio = stats.moved_fraction == 0.0 ? 1.0 : HUGE_VAL;
  } else {
    stats.overhead_ratio = stats.moved_fraction / stats.theoretical_fraction;
  }
  return stats;
}

void MovePlan::Append(MovePlan&& shard) {
  if (moves_.empty()) {
    moves_ = std::move(shard.moves_);
  } else {
    moves_.insert(moves_.end(),
                  std::make_move_iterator(shard.moves_.begin()),
                  std::make_move_iterator(shard.moves_.end()));
  }
  blocks_considered_ += shard.blocks_considered_;
  shard.moves_.clear();
  shard.blocks_considered_ = 0;
}

namespace {

// Step-major evaluation tile: small enough that two tiles of chain state
// plus a slot buffer stay cache-resident while the outer loop walks steps.
constexpr int64_t kBatchTile = 4096;

// The flattened (object, block) index space the planners shard: eligible
// views in input order, `offsets[v]` = global index of view v's first
// block. Contiguous global ranges therefore enumerate blocks in exactly
// the serial scan order, which is what makes shard-merge deterministic.
struct FlatViews {
  std::vector<const ObjectBlocksView*> views;
  std::vector<int64_t> offsets;  // Size views.size() + 1.

  int64_t total() const { return offsets.back(); }
};

FlatViews Flatten(const std::vector<ObjectBlocksView>& objects,
                  Epoch min_visible_before) {
  FlatViews flat;
  flat.offsets.push_back(0);
  for (const ObjectBlocksView& view : objects) {
    SCADDAR_CHECK(view.x0 != nullptr);
    if (view.start_epoch >= min_visible_before) {
      continue;  // Written at/after the op being planned; nothing can move.
    }
    flat.views.push_back(&view);
    flat.offsets.push_back(flat.offsets.back() +
                           static_cast<int64_t>(view.x0->size()));
  }
  return flat;
}

// Reserve for the RO1-expected move count plus slack for randomness, so a
// plan at the expected size never reallocates.
int64_t ExpectedMoves(double fraction, int64_t blocks) {
  const double expected = fraction * static_cast<double>(blocks);
  return static_cast<int64_t>(expected + expected / 16.0 + 64.0);
}

// Plans the global block range [lo, hi) of `flat` for operation `j`.
// Emits moves in flattened order — shard concatenation order == serial
// scan order.
MovePlan PlanOperationShard(const CompiledLog& compiled, Epoch j,
                            const FlatViews& flat,
                            const std::vector<PhysicalDiskId>& before,
                            const std::vector<PhysicalDiskId>& after,
                            int64_t lo, int64_t hi) {
  MovePlan plan;
  plan.Reserve(ExpectedMoves(
      TheoreticalMoveFraction(compiled.disks_after(j - 1),
                              compiled.disks_after(j)),
      hi - lo));
  const FastDiv64 mod_before(
      static_cast<uint64_t>(compiled.disks_after(j - 1)));
  const FastDiv64 mod_after(static_cast<uint64_t>(compiled.disks_after(j)));
  std::vector<uint64_t> chain(static_cast<size_t>(kBatchTile));
  std::vector<uint64_t> slot_before(static_cast<size_t>(kBatchTile));
  // First view whose block range intersects [lo, hi).
  size_t v = static_cast<size_t>(
      std::distance(flat.offsets.begin(),
                    std::upper_bound(flat.offsets.begin(), flat.offsets.end(),
                                     lo)) -
      1);
  for (; v < flat.views.size() && flat.offsets[v] < hi; ++v) {
    const ObjectBlocksView& view = *flat.views[v];
    const int64_t first = std::max<int64_t>(lo - flat.offsets[v], 0);
    const int64_t last = std::min<int64_t>(hi - flat.offsets[v],
                                           static_cast<int64_t>(view.x0->size()));
    for (int64_t tile = first; tile < last; tile += kBatchTile) {
      const int64_t count = std::min(kBatchTile, last - tile);
      const std::span<uint64_t> xs(chain.data(), static_cast<size_t>(count));
      std::copy_n(view.x0->data() + tile, count, chain.data());
      compiled.AdvanceXBatch(xs, view.start_epoch, j - 1);
      for (int64_t i = 0; i < count; ++i) {
        slot_before[static_cast<size_t>(i)] = mod_before.Mod(chain[static_cast<size_t>(i)]);
      }
      compiled.AdvanceXBatch(xs, j - 1, j);
      for (int64_t i = 0; i < count; ++i) {
        const DiskSlot s_before =
            static_cast<DiskSlot>(slot_before[static_cast<size_t>(i)]);
        const DiskSlot s_after =
            static_cast<DiskSlot>(mod_after.Mod(chain[static_cast<size_t>(i)]));
        const PhysicalDiskId phys_before = before[static_cast<size_t>(s_before)];
        const PhysicalDiskId phys_after = after[static_cast<size_t>(s_after)];
        if (phys_before != phys_after) {
          plan.Add(BlockMove{
              .block = {view.object, static_cast<BlockIndex>(tile + i)},
              .from_slot = s_before,
              .to_slot = s_after,
              .from_physical = phys_before,
              .to_physical = phys_after,
          });
        }
      }
    }
  }
  plan.set_blocks_considered(hi - lo);
  return plan;
}

// Plans [lo, hi) of a full redistribution; `from_flat`/`to_flat` enumerate
// the same objects with the same block counts (checked by the caller).
MovePlan PlanFullShard(const CompiledLog& from_compiled,
                       const CompiledLog& to_compiled,
                       const FlatViews& from_flat, const FlatViews& to_flat,
                       const std::vector<PhysicalDiskId>& before,
                       const std::vector<PhysicalDiskId>& after, int64_t lo,
                       int64_t hi) {
  MovePlan plan;
  // A full redistribution moves nearly everything; reserve the whole range.
  plan.Reserve(hi - lo);
  std::vector<uint64_t> from_chain(static_cast<size_t>(kBatchTile));
  std::vector<uint64_t> to_chain(static_cast<size_t>(kBatchTile));
  const FastDiv64 mod_before(
      static_cast<uint64_t>(from_compiled.current_disks()));
  const FastDiv64 mod_after(static_cast<uint64_t>(to_compiled.current_disks()));
  size_t v = static_cast<size_t>(
      std::distance(from_flat.offsets.begin(),
                    std::upper_bound(from_flat.offsets.begin(),
                                     from_flat.offsets.end(), lo)) -
      1);
  for (; v < from_flat.views.size() && from_flat.offsets[v] < hi; ++v) {
    const ObjectBlocksView& from_view = *from_flat.views[v];
    const ObjectBlocksView& to_view = *to_flat.views[v];
    const int64_t first = std::max<int64_t>(lo - from_flat.offsets[v], 0);
    const int64_t last =
        std::min<int64_t>(hi - from_flat.offsets[v],
                          static_cast<int64_t>(from_view.x0->size()));
    for (int64_t tile = first; tile < last; tile += kBatchTile) {
      const int64_t count = std::min(kBatchTile, last - tile);
      std::copy_n(from_view.x0->data() + tile, count, from_chain.data());
      std::copy_n(to_view.x0->data() + tile, count, to_chain.data());
      from_compiled.FinalXBatch(
          std::span<uint64_t>(from_chain.data(), static_cast<size_t>(count)),
          from_view.start_epoch);
      to_compiled.FinalXBatch(
          std::span<uint64_t>(to_chain.data(), static_cast<size_t>(count)),
          to_view.start_epoch);
      for (int64_t i = 0; i < count; ++i) {
        const DiskSlot s_before = static_cast<DiskSlot>(
            mod_before.Mod(from_chain[static_cast<size_t>(i)]));
        const DiskSlot s_after = static_cast<DiskSlot>(
            mod_after.Mod(to_chain[static_cast<size_t>(i)]));
        const PhysicalDiskId phys_before = before[static_cast<size_t>(s_before)];
        const PhysicalDiskId phys_after = after[static_cast<size_t>(s_after)];
        if (phys_before != phys_after) {
          plan.Add(BlockMove{
              .block = {from_view.object, static_cast<BlockIndex>(tile + i)},
              .from_slot = s_before,
              .to_slot = s_after,
              .from_physical = phys_before,
              .to_physical = phys_after,
          });
        }
      }
    }
  }
  plan.set_blocks_considered(hi - lo);
  return plan;
}

// Runs `shard(lo, hi)` over `[0, total)`: on the calling thread when the
// input is small or one thread is requested, otherwise as one static chunk
// per worker. Shard plans are merged in chunk order, so the concatenation
// equals the single-shard (serial) plan byte for byte.
template <typename ShardFn>
MovePlan RunSharded(int64_t total, const ParallelPlanOptions& options,
                    const ShardFn& shard) {
  const int threads =
      options.pool != nullptr ? options.pool->num_threads() : options.num_threads;
  if (threads <= 1 || total < options.min_blocks_to_shard) {
    return shard(0, total);
  }
  const int64_t chunks = std::min<int64_t>(threads, total);
  const int64_t chunk_size = (total + chunks - 1) / chunks;
  std::vector<MovePlan> shards(static_cast<size_t>(chunks));
  const auto body = [&](int64_t chunk_lo, int64_t chunk_hi) {
    for (int64_t c = chunk_lo; c < chunk_hi; ++c) {
      const int64_t lo = c * chunk_size;
      const int64_t hi = std::min(total, lo + chunk_size);
      shards[static_cast<size_t>(c)] = shard(lo, hi);
    }
  };
  if (options.pool != nullptr) {
    options.pool->ParallelFor(0, chunks, body);
  } else {
    ThreadPool pool(threads);
    pool.ParallelFor(0, chunks, body);
  }
  MovePlan plan;
  int64_t moves = 0;
  for (const MovePlan& s : shards) {
    moves += s.num_moves();
  }
  plan.Reserve(moves);
  for (MovePlan& s : shards) {
    plan.Append(std::move(s));
  }
  return plan;
}

}  // namespace

MovePlan PlanOperation(const OpLog& log, Epoch j,
                       const std::vector<ObjectBlocksView>& objects,
                       const ParallelPlanOptions& options) {
  SCADDAR_CHECK(j >= 1 && j <= log.num_ops());
  const CompiledLog compiled(log);
  const FlatViews flat = Flatten(objects, /*min_visible_before=*/j);
  const std::vector<PhysicalDiskId>& before = log.physical_disks_at(j - 1);
  const std::vector<PhysicalDiskId>& after = log.physical_disks_at(j);
  return RunSharded(flat.total(), options, [&](int64_t lo, int64_t hi) {
    return PlanOperationShard(compiled, j, flat, before, after, lo, hi);
  });
}

MovePlan PlanFullRedistribution(const OpLog& from_log,
                                const std::vector<ObjectBlocksView>& from_x0,
                                const OpLog& to_log,
                                const std::vector<ObjectBlocksView>& to_x0,
                                const ParallelPlanOptions& options) {
  SCADDAR_CHECK(from_x0.size() == to_x0.size());
  const CompiledLog from_compiled(from_log);
  const CompiledLog to_compiled(to_log);
  // Every view participates: a full redistribution re-places all blocks.
  constexpr Epoch kKeepAll = std::numeric_limits<Epoch>::max();
  const FlatViews from_flat = Flatten(from_x0, /*min_visible_before=*/kKeepAll);
  const FlatViews to_flat = Flatten(to_x0, /*min_visible_before=*/kKeepAll);
  SCADDAR_CHECK(from_flat.views.size() == to_flat.views.size());
  for (size_t i = 0; i < from_flat.views.size(); ++i) {
    SCADDAR_CHECK(from_flat.views[i]->object == to_flat.views[i]->object);
    SCADDAR_CHECK(from_flat.views[i]->x0->size() ==
                  to_flat.views[i]->x0->size());
  }
  const std::vector<PhysicalDiskId>& before = from_log.physical_disks();
  const std::vector<PhysicalDiskId>& after = to_log.physical_disks();
  return RunSharded(from_flat.total(), options, [&](int64_t lo, int64_t hi) {
    return PlanFullShard(from_compiled, to_compiled, from_flat, to_flat,
                         before, after, lo, hi);
  });
}

MovePlan PlanOperationScalar(const OpLog& log, Epoch j,
                             const std::vector<ObjectBlocksView>& objects) {
  SCADDAR_CHECK(j >= 1 && j <= log.num_ops());
  const Mapper mapper(&log);
  const std::vector<PhysicalDiskId>& before = log.physical_disks_at(j - 1);
  const std::vector<PhysicalDiskId>& after = log.physical_disks_at(j);
  MovePlan plan;
  int64_t considered = 0;
  for (const ObjectBlocksView& view : objects) {
    SCADDAR_CHECK(view.x0 != nullptr);
    if (view.start_epoch >= j) {
      continue;  // Written at/after this op; nothing of it can move.
    }
    for (size_t i = 0; i < view.x0->size(); ++i) {
      ++considered;
      const uint64_t x0 = (*view.x0)[i];
      const DiskSlot slot_before =
          mapper.SlotBetween(x0, view.start_epoch, j - 1);
      const DiskSlot slot_after = mapper.SlotBetween(x0, view.start_epoch, j);
      const PhysicalDiskId phys_before =
          before[static_cast<size_t>(slot_before)];
      const PhysicalDiskId phys_after = after[static_cast<size_t>(slot_after)];
      if (phys_before != phys_after) {
        plan.Add(BlockMove{
            .block = {view.object, static_cast<BlockIndex>(i)},
            .from_slot = slot_before,
            .to_slot = slot_after,
            .from_physical = phys_before,
            .to_physical = phys_after,
        });
      }
    }
  }
  plan.set_blocks_considered(considered);
  return plan;
}

MovePlan PlanFullRedistributionScalar(
    const OpLog& from_log, const std::vector<ObjectBlocksView>& from_x0,
    const OpLog& to_log, const std::vector<ObjectBlocksView>& to_x0) {
  SCADDAR_CHECK(from_x0.size() == to_x0.size());
  const Mapper from_mapper(&from_log);
  const Mapper to_mapper(&to_log);
  const std::vector<PhysicalDiskId>& before = from_log.physical_disks();
  const std::vector<PhysicalDiskId>& after = to_log.physical_disks();
  MovePlan plan;
  int64_t considered = 0;
  for (size_t obj = 0; obj < from_x0.size(); ++obj) {
    const ObjectBlocksView& from_view = from_x0[obj];
    const ObjectBlocksView& to_view = to_x0[obj];
    SCADDAR_CHECK(from_view.object == to_view.object);
    SCADDAR_CHECK(from_view.x0 != nullptr && to_view.x0 != nullptr);
    SCADDAR_CHECK(from_view.x0->size() == to_view.x0->size());
    for (size_t i = 0; i < from_view.x0->size(); ++i) {
      ++considered;
      const DiskSlot slot_before = from_mapper.SlotBetween(
          (*from_view.x0)[i], from_view.start_epoch, from_log.num_ops());
      const DiskSlot slot_after = to_mapper.SlotBetween(
          (*to_view.x0)[i], to_view.start_epoch, to_log.num_ops());
      const PhysicalDiskId phys_before =
          before[static_cast<size_t>(slot_before)];
      const PhysicalDiskId phys_after =
          after[static_cast<size_t>(slot_after)];
      if (phys_before != phys_after) {
        plan.Add(BlockMove{
            .block = {from_view.object, static_cast<BlockIndex>(i)},
            .from_slot = slot_before,
            .to_slot = slot_after,
            .from_physical = phys_before,
            .to_physical = phys_after,
        });
      }
    }
  }
  plan.set_blocks_considered(considered);
  return plan;
}

}  // namespace scaddar
