#include "core/redistribution.h"

#include <cmath>

namespace scaddar {

MovementStats MovePlan::ToMovementStats(int64_t n_prev, int64_t n_cur) const {
  MovementStats stats;
  stats.total_blocks = blocks_considered_;
  stats.moved_blocks = num_moves();
  stats.moved_fraction =
      blocks_considered_ == 0
          ? 0.0
          : static_cast<double>(num_moves()) /
                static_cast<double>(blocks_considered_);
  stats.theoretical_fraction = TheoreticalMoveFraction(n_prev, n_cur);
  if (stats.theoretical_fraction == 0.0) {
    stats.overhead_ratio = stats.moved_fraction == 0.0 ? 1.0 : HUGE_VAL;
  } else {
    stats.overhead_ratio = stats.moved_fraction / stats.theoretical_fraction;
  }
  return stats;
}

MovePlan PlanOperation(const OpLog& log, Epoch j,
                       const std::vector<ObjectBlocksView>& objects) {
  SCADDAR_CHECK(j >= 1 && j <= log.num_ops());
  const Mapper mapper(&log);
  const std::vector<PhysicalDiskId>& before = log.physical_disks_at(j - 1);
  const std::vector<PhysicalDiskId>& after = log.physical_disks_at(j);
  MovePlan plan;
  int64_t considered = 0;
  for (const ObjectBlocksView& view : objects) {
    SCADDAR_CHECK(view.x0 != nullptr);
    if (view.start_epoch >= j) {
      continue;  // Written at/after this op; nothing of it can move.
    }
    for (size_t i = 0; i < view.x0->size(); ++i) {
      ++considered;
      const uint64_t x0 = (*view.x0)[i];
      const DiskSlot slot_before =
          mapper.SlotBetween(x0, view.start_epoch, j - 1);
      const DiskSlot slot_after = mapper.SlotBetween(x0, view.start_epoch, j);
      const PhysicalDiskId phys_before =
          before[static_cast<size_t>(slot_before)];
      const PhysicalDiskId phys_after = after[static_cast<size_t>(slot_after)];
      if (phys_before != phys_after) {
        plan.Add(BlockMove{
            .block = {view.object, static_cast<BlockIndex>(i)},
            .from_slot = slot_before,
            .to_slot = slot_after,
            .from_physical = phys_before,
            .to_physical = phys_after,
        });
      }
    }
  }
  plan.set_blocks_considered(considered);
  return plan;
}

MovePlan PlanFullRedistribution(const OpLog& from_log,
                                const std::vector<ObjectBlocksView>& from_x0,
                                const OpLog& to_log,
                                const std::vector<ObjectBlocksView>& to_x0) {
  SCADDAR_CHECK(from_x0.size() == to_x0.size());
  const Mapper from_mapper(&from_log);
  const Mapper to_mapper(&to_log);
  const std::vector<PhysicalDiskId>& before = from_log.physical_disks();
  const std::vector<PhysicalDiskId>& after = to_log.physical_disks();
  MovePlan plan;
  int64_t considered = 0;
  for (size_t obj = 0; obj < from_x0.size(); ++obj) {
    const ObjectBlocksView& from_view = from_x0[obj];
    const ObjectBlocksView& to_view = to_x0[obj];
    SCADDAR_CHECK(from_view.object == to_view.object);
    SCADDAR_CHECK(from_view.x0 != nullptr && to_view.x0 != nullptr);
    SCADDAR_CHECK(from_view.x0->size() == to_view.x0->size());
    for (size_t i = 0; i < from_view.x0->size(); ++i) {
      ++considered;
      const DiskSlot slot_before = from_mapper.SlotBetween(
          (*from_view.x0)[i], from_view.start_epoch, from_log.num_ops());
      const DiskSlot slot_after = to_mapper.SlotBetween(
          (*to_view.x0)[i], to_view.start_epoch, to_log.num_ops());
      const PhysicalDiskId phys_before =
          before[static_cast<size_t>(slot_before)];
      const PhysicalDiskId phys_after =
          after[static_cast<size_t>(slot_after)];
      if (phys_before != phys_after) {
        plan.Add(BlockMove{
            .block = {from_view.object, static_cast<BlockIndex>(i)},
            .from_slot = slot_before,
            .to_slot = slot_after,
            .from_physical = phys_before,
            .to_physical = phys_after,
        });
      }
    }
  }
  plan.set_blocks_considered(considered);
  return plan;
}

}  // namespace scaddar
