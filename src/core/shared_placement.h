#ifndef SCADDAR_CORE_SHARED_PLACEMENT_H_
#define SCADDAR_CORE_SHARED_PLACEMENT_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>

#include "core/compiled_log.h"
#include "core/op_log.h"
#include "util/statusor.h"

namespace scaddar {

/// Thread-safe AF() for a server with many concurrent readers — the
/// production answer to Appendix A's directory-bottleneck concern. Lookups
/// run against an immutable `CompiledLog` snapshot reached through one
/// brief shared-lock pointer copy; scaling operations (rare) build a new
/// snapshot off to the side and publish it atomically. Readers therefore
/// never block each other and never block behind an in-progress operation,
/// and a reader that started on the old snapshot finishes on the old
/// snapshot — exactly the epoch semantics the migration layer expects.
class SharedPlacement {
 public:
  /// Starts with `n0` disks (> 0, or fails).
  static StatusOr<SharedPlacement> Create(int64_t n0);

  SharedPlacement(SharedPlacement&&) noexcept = default;
  SharedPlacement& operator=(SharedPlacement&&) noexcept = default;

  /// Applies a scaling operation and publishes the new snapshot. Callers
  /// serialize administrative operations among themselves (one admin at a
  /// time); readers need no coordination.
  Status ApplyOp(const ScalingOp& op);

  /// Lock-free-ish block lookup (one shared-lock pointer copy, then pure
  /// computation on the immutable snapshot). Safe from any thread.
  PhysicalDiskId Locate(uint64_t x0, Epoch start_epoch = 0) const;

  /// Batch lookup: all of `x0` resolve against ONE pinned snapshot via the
  /// step-major kernels — a single shared-lock pointer copy no matter how
  /// many blocks, and every block observes the same epoch (sizes must
  /// match, checked; all blocks share `start_epoch`).
  void LocateBatch(std::span<const uint64_t> x0,
                   std::span<PhysicalDiskId> out, Epoch start_epoch = 0) const;

  /// Pins the current snapshot — use for a batch of lookups that must all
  /// observe the same epoch.
  std::shared_ptr<const CompiledLog> Snapshot() const;

  /// The administrative view (same thread discipline as ApplyOp).
  const OpLog& log() const { return log_; }

 private:
  explicit SharedPlacement(OpLog log);

  void Publish();

  OpLog log_;
  std::shared_ptr<const CompiledLog> snapshot_;
  mutable std::shared_ptr<std::shared_mutex> mu_;  // Movability.
};

}  // namespace scaddar

#endif  // SCADDAR_CORE_SHARED_PLACEMENT_H_
