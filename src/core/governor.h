#ifndef SCADDAR_CORE_GOVERNOR_H_
#define SCADDAR_CORE_GOVERNOR_H_

#include <cstdint>

#include "core/op_log.h"
#include "util/intmath.h"

namespace scaddar {

/// Why an adaptive placement driver scheduled a reorganization.
enum class ReorgReason {
  kBudget,  // The Section 4.3 ε budget was threatened (or already spent).
  kCov,     // Live per-disk CoV drifted past the configured threshold.
};

/// One recorded self-triggered reorganization event. Lives next to the
/// governor (not the server) so checkpoint documents can carry the trigger
/// history without a recovery->server dependency.
struct ReorgTrigger {
  int64_t round = 0;
  ReorgReason reason = ReorgReason::kBudget;
  /// `BudgetConsumed` at the trigger (kBudget) or the measured CoV (kCov).
  double value = 0.0;

  friend bool operator==(const ReorgTrigger&, const ReorgTrigger&) = default;
};

/// Operational wrapper around the Section 4.3 tolerance gate: a deployment
/// configures its generator width `b` and unfairness budget `ε` once, and
/// asks the governor before every scaling operation whether to proceed or
/// to schedule a full redistribution first (the paper's "keep track of the
/// quantity Π_k explicitly and find out whether the next operation will
/// lead to a violation").
class ToleranceGovernor {
 public:
  enum class Advice {
    kProceed,      // The op fits within the ε budget.
    kRebaseFirst,  // Full redistribution needed before (or instead of) it.
  };

  /// `bits` in [1, 64], `eps > 0` (checked).
  ToleranceGovernor(int bits, double eps);

  /// Advice for appending `op` to `log`.
  Advice Consider(const OpLog& log, const ScalingOp& op) const;

  /// True iff `log` is still within budget as it stands.
  bool WithinBudget(const OpLog& log) const;

  /// Fraction of the log-scale budget already consumed:
  /// `log2(Π_k) / log2(R0·ε/(1+ε))`, clamped to [0, 1]. A dashboard-ready
  /// "range fuel gauge".
  double BudgetConsumed(const OpLog& log) const;

  /// Rough number of further operations the deployment supports if the
  /// disk count stays around `typical_disks` (> 1, checked).
  int64_t EstimatedOpsLeft(const OpLog& log, int64_t typical_disks) const;

  int bits() const { return bits_; }
  double eps() const { return eps_; }
  uint64_t r0() const { return MaxRandomForBits(bits_); }

 private:
  long double Limit() const;

  int bits_;
  double eps_;
};

}  // namespace scaddar

#endif  // SCADDAR_CORE_GOVERNOR_H_
