#ifndef SCADDAR_CORE_REMAP_H_
#define SCADDAR_CORE_REMAP_H_

#include <cstdint>

#include "core/scaling_op.h"

namespace scaddar {

/// The REMAP functions of Section 4 — pure integer algebra on the block's
/// running random number `X_j`. Each function maps `X_{j-1}` to `X_j` for
/// one scaling operation, drawing fresh randomness from the quotient
/// `q_{j-1} = X_{j-1} div N_{j-1}` (Definition 4.1) so that RO2 (uniformity)
/// is preserved across successive operations.

/// Eq. 4/5: op `j` adds disks (`n_cur > n_prev`, both > 0, checked).
///
///   X_j = (q div n_cur)*n_cur + r          if (q mod n_cur) <  n_prev  (a)
///   X_j = (q div n_cur)*n_cur + q mod n_cur otherwise                  (b)
///
/// Case (a): the block stays on its slot `r`. Case (b): it moves to added
/// slot `q mod n_cur`, which happens with probability (n_cur-n_prev)/n_cur,
/// exactly the RO1 minimum.
uint64_t RemapAdd(uint64_t x_prev, int64_t n_prev, int64_t n_cur);

/// Eq. 3: op `j` removes the slots named by `op` (`op.is_remove()`; `n_cur`
/// = `n_prev - op.removed_slots().size() > 0`; checked).
///
///   X_j = q*n_cur + new(r)   if slot r survives                        (a)
///   X_j = q                  if slot r was removed                     (b)
///
/// Case (a) keeps the block in place under the compacted numbering while
/// stashing the fresh randomness `q` in the quotient; case (b) sends it to
/// slot `q mod n_cur`, uniform over the survivors.
uint64_t RemapRemove(uint64_t x_prev, int64_t n_prev, int64_t n_cur,
                     const ScalingOp& op);

/// Eq. 2 — the paper's *naive* addition remap, kept as a baseline. It draws
/// from the original `X_0` instead of fresh randomness:
///
///   X_j = X_0 mod ???  -- concretely: the block moves to slot
///   (x0 mod n_cur) iff that slot is one of the added ones, else stays.
///
/// Satisfies RO1/AO1 but violates RO2 after the second operation (Figure 1):
/// returns the new slot directly rather than a remapped X.
int64_t NaiveAddSlot(uint64_t x0, int64_t slot_prev, int64_t n_prev,
                     int64_t n_cur);

/// Naive removal analog (the paper omits it, noting "the same results are
/// seen"): a block on a removed slot rehashes to `x0 mod n_cur` among the
/// survivors; others keep their compacted slot.
int64_t NaiveRemoveSlot(uint64_t x0, int64_t slot_prev, int64_t n_prev,
                        int64_t n_cur, const ScalingOp& op);

}  // namespace scaddar

#endif  // SCADDAR_CORE_REMAP_H_
