#include "core/shared_placement.h"

#include <mutex>

namespace scaddar {

StatusOr<SharedPlacement> SharedPlacement::Create(int64_t n0) {
  SCADDAR_ASSIGN_OR_RETURN(OpLog log, OpLog::Create(n0));
  return SharedPlacement(std::move(log));
}

SharedPlacement::SharedPlacement(OpLog log)
    : log_(std::move(log)),
      snapshot_(std::make_shared<const CompiledLog>(log_)),
      mu_(std::make_shared<std::shared_mutex>()) {}

void SharedPlacement::Publish() {
  auto next = std::make_shared<const CompiledLog>(log_);
  std::unique_lock<std::shared_mutex> lock(*mu_);
  snapshot_ = std::move(next);
}

Status SharedPlacement::ApplyOp(const ScalingOp& op) {
  SCADDAR_RETURN_IF_ERROR(log_.Append(op));
  Publish();
  return OkStatus();
}

std::shared_ptr<const CompiledLog> SharedPlacement::Snapshot() const {
  std::shared_lock<std::shared_mutex> lock(*mu_);
  return snapshot_;
}

PhysicalDiskId SharedPlacement::Locate(uint64_t x0, Epoch start_epoch) const {
  return Snapshot()->LocatePhysical(x0, start_epoch);
}

void SharedPlacement::LocateBatch(std::span<const uint64_t> x0,
                                  std::span<PhysicalDiskId> out,
                                  Epoch start_epoch) const {
  Snapshot()->LocatePhysicalBatch(x0, out, start_epoch);
}

}  // namespace scaddar
