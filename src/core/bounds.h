#ifndef SCADDAR_CORE_BOUNDS_H_
#define SCADDAR_CORE_BOUNDS_H_

#include <cstdint>

#include "core/op_log.h"

namespace scaddar {

/// Section 4.3 — quantifying the reduction in randomness. After each
/// operation the usable random range shrinks by the previous disk count;
/// these helpers compute the resulting *expected* unfairness and the number
/// of operations a configuration can sustain.

/// The unfairness coefficient `f(R, N) = 1 / (R div N)` of drawing `x`
/// uniformly from [0, R-1] and assigning disk `x mod N`. Returns HUGE_VAL
/// when `R div N == 0` (range too small to cover the disks even once).
/// Requires `R >= 1`, `N >= 1` (checked).
double UnfairnessCoefficient(uint64_t r, int64_t n);

/// Lower bound on the random range after the first `k` operations of `log`:
/// `R_k = ((R0 div N0) div N1) ... div N_{k-1}` (proof of Lemma 4.2).
/// `k` in [0, log.num_ops()] (checked).
uint64_t RangeAfter(uint64_t r0, const OpLog& log, Epoch k);

/// Expected unfairness after all operations of `log`: `f(R_k, N_k)` with
/// `R_k` from `RangeAfter`.
double UnfairnessAfter(uint64_t r0, const OpLog& log);

/// The rule of thumb at the end of Section 4.3:
///   k + 1 <= (b - log2(1/eps)) / log2(avg_disks)
/// Returns the largest number of scaling operations `k` the configuration
/// supports (possibly 0). `bits` in [1, 64]; `eps > 0`; `avg_disks > 1`
/// (checked). The paper's example: bits=64, eps=0.01, avg_disks=16 -> 13.
int64_t RuleOfThumbMaxOps(int bits, double eps, double avg_disks);

/// Exact variant of the a-priori estimate for a *constant* disk count `n`:
/// the largest `k` such that `n^(k+1) <= R0 * eps / (1 + eps)` (the Lemma
/// 4.3 precondition with `Pi_k = n^(k+1)`).
int64_t ExactMaxOpsForConstantDisks(uint64_t r0, int64_t n, double eps);

}  // namespace scaddar

#endif  // SCADDAR_CORE_BOUNDS_H_
