#include "core/op_log.h"

#include <algorithm>
#include <charconv>
#include <cmath>

namespace scaddar {

StatusOr<OpLog> OpLog::Create(int64_t n0) {
  if (n0 <= 0) {
    return InvalidArgumentError("initial disk count must be positive");
  }
  return OpLog(n0);
}

StatusOr<OpLog> OpLog::CreateWithIds(std::vector<PhysicalDiskId> ids) {
  if (ids.empty()) {
    return InvalidArgumentError("initial disk set must be non-empty");
  }
  PhysicalDiskId max_id = -1;
  for (const PhysicalDiskId id : ids) {
    if (id < 0) {
      return InvalidArgumentError("physical ids must be non-negative");
    }
    max_id = id > max_id ? id : max_id;
  }
  std::vector<PhysicalDiskId> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return InvalidArgumentError("physical ids must be distinct");
  }
  OpLog log(static_cast<int64_t>(ids.size()));
  log.physical_by_epoch_.front() = std::move(ids);
  log.next_physical_id_ = max_id + 1;
  return log;
}

OpLog::OpLog(int64_t n0) {
  disk_counts_.push_back(n0);
  std::vector<PhysicalDiskId> initial(static_cast<size_t>(n0));
  for (int64_t slot = 0; slot < n0; ++slot) {
    initial[static_cast<size_t>(slot)] = slot;
  }
  physical_by_epoch_.push_back(std::move(initial));
  next_physical_id_ = n0;
  pi_.MultiplyBy(static_cast<uint64_t>(n0));
}

Status OpLog::Append(const ScalingOp& op) {
  const int64_t n_prev = current_disks();
  std::vector<PhysicalDiskId> next_physical = physical_by_epoch_.back();
  int64_t n_cur = 0;
  if (op.is_add()) {
    n_cur = n_prev + op.add_count();
    for (int64_t i = 0; i < op.add_count(); ++i) {
      next_physical.push_back(next_physical_id_ + i);
    }
  } else {
    const std::vector<DiskSlot>& removed = op.removed_slots();
    if (removed.back() >= n_prev) {
      return InvalidArgumentError("removal names a slot beyond N_{j-1}");
    }
    n_cur = n_prev - static_cast<int64_t>(removed.size());
    if (n_cur <= 0) {
      return InvalidArgumentError("removal would leave no disks");
    }
    // Compact: keep survivors in order (this realizes the paper's new()).
    std::vector<PhysicalDiskId> survivors;
    survivors.reserve(static_cast<size_t>(n_cur));
    size_t next_removed = 0;
    for (int64_t slot = 0; slot < n_prev; ++slot) {
      if (next_removed < removed.size() && removed[next_removed] == slot) {
        ++next_removed;
        continue;
      }
      survivors.push_back(next_physical[static_cast<size_t>(slot)]);
    }
    next_physical = std::move(survivors);
  }
  ops_.push_back(op);
  disk_counts_.push_back(n_cur);
  physical_by_epoch_.push_back(std::move(next_physical));
  if (op.is_add()) {
    next_physical_id_ += op.add_count();
  }
  pi_.MultiplyBy(static_cast<uint64_t>(n_cur));
  revision_.Bump();
  return OkStatus();
}

int64_t OpLog::disks_after(Epoch j) const {
  SCADDAR_CHECK(j >= 0 && j <= num_ops());
  return disk_counts_[static_cast<size_t>(j)];
}

const ScalingOp& OpLog::op(Epoch j) const {
  SCADDAR_CHECK(j >= 1 && j <= num_ops());
  return ops_[static_cast<size_t>(j - 1)];
}

const std::vector<PhysicalDiskId>& OpLog::physical_disks_at(Epoch j) const {
  SCADDAR_CHECK(j >= 0 && j <= num_ops());
  return physical_by_epoch_[static_cast<size_t>(j)];
}

namespace {

// Returns true iff `pi` <= r0 * eps / (1 + eps), computed in long double to
// avoid 128-bit overflow concerns. A saturated product always fails.
bool ProductWithinTolerance(const SaturatingProduct& pi, uint64_t r0,
                            double eps) {
  SCADDAR_CHECK(eps > 0.0);
  if (pi.saturated()) {
    return false;
  }
  const long double limit =
      static_cast<long double>(r0) *
      (static_cast<long double>(eps) / (1.0L + static_cast<long double>(eps)));
  return static_cast<long double>(pi.value()) <= limit;
}

}  // namespace

bool OpLog::SatisfiesTolerance(uint64_t r0, double eps) const {
  return ProductWithinTolerance(pi_, r0, eps);
}

bool OpLog::WouldExceedTolerance(const ScalingOp& op, uint64_t r0,
                                 double eps) const {
  const int64_t n_next = current_disks() + op.delta();
  if (n_next <= 0) {
    return true;  // Invalid op; callers validate separately via Append.
  }
  SaturatingProduct next = pi_;
  next.MultiplyBy(static_cast<uint64_t>(n_next));
  return !ProductWithinTolerance(next, r0, eps);
}

std::string OpLog::Serialize() const {
  // Header: plain "n0" when epoch-0 ids are the default 0..n0-1, otherwise
  // "@id0,id1,..." to preserve a CreateWithIds log exactly.
  const std::vector<PhysicalDiskId>& initial = physical_by_epoch_.front();
  bool default_ids = true;
  for (size_t i = 0; i < initial.size(); ++i) {
    if (initial[i] != static_cast<PhysicalDiskId>(i)) {
      default_ids = false;
      break;
    }
  }
  std::string out;
  if (default_ids) {
    out = std::to_string(initial_disks());
  } else {
    out = "@";
    for (size_t i = 0; i < initial.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += std::to_string(initial[i]);
    }
  }
  for (const ScalingOp& op : ops_) {
    out += ';';
    out += op.ToString();
  }
  return out;
}

namespace {

StatusOr<int64_t> ParseInt64(std::string_view token) {
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return InvalidArgumentError("malformed integer in op log");
  }
  return value;
}

}  // namespace

StatusOr<OpLog> OpLog::Deserialize(std::string_view text) {
  const size_t first_sep = text.find(';');
  const std::string_view head = text.substr(0, first_sep);
  StatusOr<OpLog> log_or = InvalidArgumentError("empty op log header");
  if (!head.empty() && head.front() == '@') {
    std::vector<PhysicalDiskId> ids;
    std::string_view body = head.substr(1);
    while (!body.empty()) {
      const size_t comma = body.find(',');
      SCADDAR_ASSIGN_OR_RETURN(const int64_t id,
                               ParseInt64(body.substr(0, comma)));
      ids.push_back(id);
      if (comma == std::string_view::npos) {
        break;
      }
      body = body.substr(comma + 1);
    }
    log_or = OpLog::CreateWithIds(std::move(ids));
  } else {
    SCADDAR_ASSIGN_OR_RETURN(const int64_t n0, ParseInt64(head));
    log_or = OpLog::Create(n0);
  }
  if (!log_or.ok()) {
    return log_or.status();
  }
  OpLog log = std::move(log_or).value();
  std::string_view rest =
      first_sep == std::string_view::npos ? std::string_view()
                                          : text.substr(first_sep + 1);
  while (!rest.empty()) {
    const size_t sep = rest.find(';');
    const std::string_view token = rest.substr(0, sep);
    SCADDAR_ASSIGN_OR_RETURN(ScalingOp op, ScalingOp::Parse(token));
    SCADDAR_RETURN_IF_ERROR(log.Append(op));
    if (sep == std::string_view::npos) {
      break;
    }
    rest = rest.substr(sep + 1);
  }
  return log;
}

}  // namespace scaddar
