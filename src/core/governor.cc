#include "core/governor.h"

#include <algorithm>
#include <cmath>

namespace scaddar {

ToleranceGovernor::ToleranceGovernor(int bits, double eps)
    : bits_(bits), eps_(eps) {
  SCADDAR_CHECK(bits >= 1 && bits <= 64);
  SCADDAR_CHECK(eps > 0.0);
}

long double ToleranceGovernor::Limit() const {
  return static_cast<long double>(r0()) *
         (static_cast<long double>(eps_) /
          (1.0L + static_cast<long double>(eps_)));
}

ToleranceGovernor::Advice ToleranceGovernor::Consider(
    const OpLog& log, const ScalingOp& op) const {
  return log.WouldExceedTolerance(op, r0(), eps_) ? Advice::kRebaseFirst
                                                  : Advice::kProceed;
}

bool ToleranceGovernor::WithinBudget(const OpLog& log) const {
  return log.SatisfiesTolerance(r0(), eps_);
}

double ToleranceGovernor::BudgetConsumed(const OpLog& log) const {
  if (log.pi().saturated()) {
    return 1.0;
  }
  const double spent =
      std::log2(static_cast<double>(log.pi().value()));
  const double budget = std::log2(static_cast<double>(Limit()));
  if (budget <= 0.0) {
    return 1.0;
  }
  return std::clamp(spent / budget, 0.0, 1.0);
}

int64_t ToleranceGovernor::EstimatedOpsLeft(const OpLog& log,
                                            int64_t typical_disks) const {
  SCADDAR_CHECK(typical_disks > 1);
  if (log.pi().saturated()) {
    return 0;
  }
  const long double remaining =
      Limit() / static_cast<long double>(log.pi().value());
  if (remaining <= 1.0L) {
    return 0;
  }
  return static_cast<int64_t>(
      std::floor(std::log2(static_cast<double>(remaining)) /
                 std::log2(static_cast<double>(typical_disks))));
}

}  // namespace scaddar
