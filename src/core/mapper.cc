#include "core/mapper.h"

namespace scaddar {

uint64_t Mapper::XBetween(uint64_t x0, Epoch from, Epoch to) const {
  SCADDAR_CHECK(from >= 0 && from <= to && to <= log_->num_ops());
  uint64_t x = x0;
  for (Epoch k = from + 1; k <= to; ++k) {
    const ScalingOp& op = log_->op(k);
    const int64_t n_prev = log_->disks_after(k - 1);
    const int64_t n_cur = log_->disks_after(k);
    x = op.is_add() ? RemapAdd(x, n_prev, n_cur)
                    : RemapRemove(x, n_prev, n_cur, op);
  }
  return x;
}

DiskSlot Mapper::SlotBetween(uint64_t x0, Epoch from, Epoch to) const {
  return static_cast<DiskSlot>(
      XBetween(x0, from, to) %
      static_cast<uint64_t>(log_->disks_after(to)));
}

PhysicalDiskId Mapper::PhysicalBetween(uint64_t x0, Epoch from,
                                       Epoch to) const {
  const DiskSlot slot = SlotBetween(x0, from, to);
  return log_->physical_disks_at(to)[static_cast<size_t>(slot)];
}

PhysicalDiskId Mapper::LocatePhysical(uint64_t x0) const {
  return PhysicalAfter(x0, log_->num_ops());
}

PhysicalDiskId Mapper::PhysicalAfter(uint64_t x0, Epoch j) const {
  return PhysicalBetween(x0, 0, j);
}

Mapper::Trace Mapper::TraceChain(uint64_t x0) const {
  Trace trace;
  const Epoch ops = log_->num_ops();
  trace.x.reserve(static_cast<size_t>(ops) + 1);
  trace.slot.reserve(static_cast<size_t>(ops) + 1);
  trace.physical.reserve(static_cast<size_t>(ops) + 1);
  uint64_t x = x0;
  for (Epoch j = 0; j <= ops; ++j) {
    if (j > 0) {
      const ScalingOp& op = log_->op(j);
      const int64_t n_prev = log_->disks_after(j - 1);
      const int64_t n_cur = log_->disks_after(j);
      x = op.is_add() ? RemapAdd(x, n_prev, n_cur)
                      : RemapRemove(x, n_prev, n_cur, op);
    }
    const auto slot = static_cast<DiskSlot>(
        x % static_cast<uint64_t>(log_->disks_after(j)));
    trace.x.push_back(x);
    trace.slot.push_back(slot);
    trace.physical.push_back(
        log_->physical_disks_at(j)[static_cast<size_t>(slot)]);
  }
  return trace;
}

}  // namespace scaddar
