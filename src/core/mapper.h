#ifndef SCADDAR_CORE_MAPPER_H_
#define SCADDAR_CORE_MAPPER_H_

#include <cstdint>
#include <vector>

#include "core/op_log.h"
#include "core/remap.h"
#include "core/types.h"

namespace scaddar {

/// The paper's access function `AF()`: given a block's original random
/// number `X_0` and the op log, computes the block's disk after any number
/// of scaling operations by replaying the REMAP chain
/// `REMAP_1 ... REMAP_j` (AO1: a handful of div/mod per operation, no
/// directory, one disk access per block).
///
/// The mapper borrows the op log (non-owning); the log must outlive it.
class Mapper {
 public:
  explicit Mapper(const OpLog* log) : log_(log) {
    SCADDAR_CHECK(log != nullptr);
  }

  /// `X_j` after the first `j` operations (`j` in [0, num_ops], checked).
  uint64_t XAfter(uint64_t x0, Epoch j) const { return XBetween(x0, 0, j); }

  /// Replays only operations `from+1 .. to` (checked: 0 <= from <= to <=
  /// num_ops). Supports objects written *after* some scaling operations:
  /// an object registered at epoch `from` starts its REMAP chain there,
  /// with `x0 mod N_from` as its initial disk — it has no epoch-0 history.
  uint64_t XBetween(uint64_t x0, Epoch from, Epoch to) const;

  /// `D_j = X_j mod N_j` after the first `j` operations.
  DiskSlot SlotAfter(uint64_t x0, Epoch j) const {
    return SlotBetween(x0, 0, j);
  }

  /// Slot at epoch `to` for a block whose chain starts at epoch `from`.
  DiskSlot SlotBetween(uint64_t x0, Epoch from, Epoch to) const;

  /// Physical disk at epoch `to` for a chain starting at epoch `from`.
  PhysicalDiskId PhysicalBetween(uint64_t x0, Epoch from, Epoch to) const;

  /// Current logical slot `D_j` for the latest epoch.
  DiskSlot LocateSlot(uint64_t x0) const {
    return SlotAfter(x0, log_->num_ops());
  }

  /// Current physical disk id (slot mapped through the epoch's slot table).
  PhysicalDiskId LocatePhysical(uint64_t x0) const;

  /// Physical disk id after the first `j` operations.
  PhysicalDiskId PhysicalAfter(uint64_t x0, Epoch j) const;

  /// Full chain `X_0..X_j`, `D_0..D_j` for diagnostics, tests and the
  /// Figure 1 walkthrough.
  struct Trace {
    std::vector<uint64_t> x;          // x[j] == X_j.
    std::vector<DiskSlot> slot;       // slot[j] == D_j.
    std::vector<PhysicalDiskId> physical;
  };
  Trace TraceChain(uint64_t x0) const;

  const OpLog& log() const { return *log_; }

 private:
  const OpLog* log_;
};

}  // namespace scaddar

#endif  // SCADDAR_CORE_MAPPER_H_
