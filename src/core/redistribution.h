#ifndef SCADDAR_CORE_REDISTRIBUTION_H_
#define SCADDAR_CORE_REDISTRIBUTION_H_

#include <cstdint>
#include <vector>

#include "core/mapper.h"
#include "core/op_log.h"
#include "core/types.h"
#include "stats/movement.h"
#include "util/statusor.h"

namespace scaddar {

/// One physical block relocation produced by the redistribution function
/// `RF()`.
struct BlockMove {
  BlockRef block;
  DiskSlot from_slot = 0;
  DiskSlot to_slot = 0;
  PhysicalDiskId from_physical = 0;
  PhysicalDiskId to_physical = 0;

  friend bool operator==(const BlockMove&, const BlockMove&) = default;
};

/// The output of `RF()` for one scaling operation: every block that must
/// change physical disks, plus accounting of how many blocks were examined.
class MovePlan {
 public:
  MovePlan() = default;

  void Add(BlockMove move) { moves_.push_back(move); }
  void set_blocks_considered(int64_t n) { blocks_considered_ = n; }

  const std::vector<BlockMove>& moves() const { return moves_; }
  int64_t num_moves() const { return static_cast<int64_t>(moves_.size()); }
  int64_t blocks_considered() const { return blocks_considered_; }

  /// RO1 accounting against the theoretical minimum for `n_prev -> n_cur`.
  MovementStats ToMovementStats(int64_t n_prev, int64_t n_cur) const;

 private:
  std::vector<BlockMove> moves_;
  int64_t blocks_considered_ = 0;
};

/// Non-owning view of one object's original random numbers `X0(i)`.
/// `start_epoch` is the epoch at which the object was written: its REMAP
/// chain begins there (0 for objects that predate all scaling operations).
struct ObjectBlocksView {
  ObjectId object = 0;
  const std::vector<uint64_t>* x0 = nullptr;  // Must outlive the call.
  Epoch start_epoch = 0;
};

/// The paper's `RF()` for scaling operation `j` (1-based, in
/// [1, log.num_ops()], checked): computes which blocks must move between
/// epochs `j-1` and `j`. Per Section 4: on additions the REMAP chain is
/// evaluated for *every* block (any block may win a slot on a new disk); on
/// removals only blocks resident on removed disks relocate — the plan
/// contains exactly those blocks whose *physical* disk changes.
MovePlan PlanOperation(const OpLog& log, Epoch j,
                       const std::vector<ObjectBlocksView>& objects);

/// Plans the paper's fallback when Lemma 4.3's precondition is violated:
/// a complete redistribution onto a fresh placement. `from` maps blocks via
/// (`from_log` replayed over `from_x0`); `to` via (`to_log` over `to_x0`,
/// typically a new seed generation with an empty log). Both views must
/// enumerate the same objects with the same block counts (checked). Every
/// block whose physical disk differs is emitted.
MovePlan PlanFullRedistribution(const OpLog& from_log,
                                const std::vector<ObjectBlocksView>& from_x0,
                                const OpLog& to_log,
                                const std::vector<ObjectBlocksView>& to_x0);

}  // namespace scaddar

#endif  // SCADDAR_CORE_REDISTRIBUTION_H_
