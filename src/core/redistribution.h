#ifndef SCADDAR_CORE_REDISTRIBUTION_H_
#define SCADDAR_CORE_REDISTRIBUTION_H_

#include <cstdint>
#include <vector>

#include "core/mapper.h"
#include "core/op_log.h"
#include "core/types.h"
#include "stats/movement.h"
#include "util/statusor.h"
#include "util/thread_pool.h"

namespace scaddar {

/// One physical block relocation produced by the redistribution function
/// `RF()`.
struct BlockMove {
  BlockRef block;
  DiskSlot from_slot = 0;
  DiskSlot to_slot = 0;
  PhysicalDiskId from_physical = 0;
  PhysicalDiskId to_physical = 0;

  friend bool operator==(const BlockMove&, const BlockMove&) = default;
};

/// The output of `RF()` for one scaling operation: every block that must
/// change physical disks, plus accounting of how many blocks were examined.
class MovePlan {
 public:
  MovePlan() = default;

  void Add(BlockMove move) { moves_.push_back(move); }
  void set_blocks_considered(int64_t n) { blocks_considered_ = n; }

  /// Pre-sizes the move vector. The planners pass the RO1-expected move
  /// count (`z_j/N_j · blocks` for additions), so million-block plans grow
  /// without `push_back` reallocation churn.
  void Reserve(int64_t n) {
    moves_.reserve(static_cast<size_t>(n < 0 ? 0 : n));
  }

  /// Splices `shard`'s moves onto the end (planner shard merge); `shard`'s
  /// `blocks_considered` accounting is added too.
  void Append(MovePlan&& shard);

  const std::vector<BlockMove>& moves() const { return moves_; }
  int64_t num_moves() const { return static_cast<int64_t>(moves_.size()); }
  int64_t blocks_considered() const { return blocks_considered_; }

  /// RO1 accounting against the theoretical minimum for `n_prev -> n_cur`.
  MovementStats ToMovementStats(int64_t n_prev, int64_t n_cur) const;

 private:
  std::vector<BlockMove> moves_;
  int64_t blocks_considered_ = 0;
};

/// Non-owning view of one object's original random numbers `X0(i)`.
/// `start_epoch` is the epoch at which the object was written: its REMAP
/// chain begins there (0 for objects that predate all scaling operations).
struct ObjectBlocksView {
  ObjectId object = 0;
  const std::vector<uint64_t>* x0 = nullptr;  // Must outlive the call.
  Epoch start_epoch = 0;
};

/// Controls how the planners shard their block scans across threads.
/// The defaults give the serial batch path; every configuration yields a
/// `MovePlan` byte-identical to every other (see below).
struct ParallelPlanOptions {
  /// Worker count when `pool == nullptr`; <= 1 plans on the calling
  /// thread. Ignored if `pool` is set (its size is used instead).
  int num_threads = 1;

  /// Inputs smaller than this stay on the calling thread even when
  /// threads are available — shard setup costs more than it saves.
  int64_t min_blocks_to_shard = 1 << 16;

  /// Optional caller-owned pool to run on (it must outlive the call);
  /// `nullptr` spins up a transient pool of `num_threads` workers.
  ThreadPool* pool = nullptr;
};

/// The paper's `RF()` for scaling operation `j` (1-based, in
/// [1, log.num_ops()], checked): computes which blocks must move between
/// epochs `j-1` and `j`. Per Section 4: on additions the REMAP chain is
/// evaluated for *every* block (any block may win a slot on a new disk); on
/// removals only blocks resident on removed disks relocate — the plan
/// contains exactly those blocks whose *physical* disk changes.
///
/// Evaluation is batched through `CompiledLog` step-major kernels: one
/// chain pass reads each block at both `j-1` and `j`. With `options`
/// requesting threads, the flattened (object, block) sequence is cut into
/// contiguous shards planned concurrently and merged in shard order, so
/// the result is *byte-identical* to the serial plan — same moves, same
/// order — regardless of thread count (`parallel_plan_test` proves it).
MovePlan PlanOperation(const OpLog& log, Epoch j,
                       const std::vector<ObjectBlocksView>& objects,
                       const ParallelPlanOptions& options = {});

/// Plans the paper's fallback when Lemma 4.3's precondition is violated:
/// a complete redistribution onto a fresh placement. `from` maps blocks via
/// (`from_log` replayed over `from_x0`); `to` via (`to_log` over `to_x0`,
/// typically a new seed generation with an empty log). Both views must
/// enumerate the same objects with the same block counts (checked). Every
/// block whose physical disk differs is emitted. Batched and sharded
/// exactly like `PlanOperation` (deterministic for any `options`).
MovePlan PlanFullRedistribution(const OpLog& from_log,
                                const std::vector<ObjectBlocksView>& from_x0,
                                const OpLog& to_log,
                                const std::vector<ObjectBlocksView>& to_x0,
                                const ParallelPlanOptions& options = {});

/// Reference implementations: one `Mapper` replay per block per epoch, no
/// batching, no threads. Retained as the equivalence oracle for the batch
/// planners (`batch_equivalence_test`) and as the baseline that
/// `bench_remap_throughput` measures the step-major kernels against.
MovePlan PlanOperationScalar(const OpLog& log, Epoch j,
                             const std::vector<ObjectBlocksView>& objects);
MovePlan PlanFullRedistributionScalar(
    const OpLog& from_log, const std::vector<ObjectBlocksView>& from_x0,
    const OpLog& to_log, const std::vector<ObjectBlocksView>& to_x0);

}  // namespace scaddar

#endif  // SCADDAR_CORE_REDISTRIBUTION_H_
