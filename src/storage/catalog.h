#ifndef SCADDAR_STORAGE_CATALOG_H_
#define SCADDAR_STORAGE_CATALOG_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "random/prng.h"
#include "random/sequence.h"
#include "storage/object.h"
#include "util/statusor.h"

namespace scaddar {

/// The object catalog: the only per-object state a SCADDAR server persists
/// (Section 1: "only a storage structure for recording scaling operations" —
/// plus one seed per object). Per-object seeds are derived from a master
/// seed, so the catalog itself serializes to a few integers per object, not
/// per block.
class Catalog {
 public:
  /// `bits` is the paper's `b`; it must not exceed the generator's output
  /// width (checked at materialization).
  Catalog(uint64_t master_seed, PrngKind kind, int bits);

  /// Registers an object with `num_blocks` blocks (> 0).
  Status AddObject(ObjectId id, int64_t num_blocks,
                   int64_t bitrate_weight = 1);

  Status RemoveObject(ObjectId id);

  bool Contains(ObjectId id) const { return objects_.contains(id); }
  StatusOr<CmObject> GetObject(ObjectId id) const;
  int64_t num_objects() const { return static_cast<int64_t>(order_.size()); }
  int64_t total_blocks() const { return total_blocks_; }

  /// Objects in registration order.
  const std::vector<ObjectId>& object_ids() const { return order_; }

  /// The seed `p_r` uses for this object at its current generation:
  /// `MixSeeds(MixSeeds(master, id), generation)`.
  StatusOr<uint64_t> SeedOf(ObjectId id) const;

  /// Materializes `X0(0..num_blocks-1)` for the object's current seed
  /// generation (Definition 3.2).
  StatusOr<std::vector<uint64_t>> MaterializeX0(ObjectId id) const;

  /// Bumps the object's seed generation — the catalog half of a full
  /// redistribution (the placement layer restarts its op log).
  Status BumpGeneration(ObjectId id);

  /// Sets the generation directly (>= 0); used when restoring snapshots.
  Status SetGeneration(ObjectId id, int64_t generation);

  int bits() const { return bits_; }
  PrngKind kind() const { return kind_; }
  uint64_t master_seed() const { return master_seed_; }

  /// `R0 = 2^bits - 1` — the initial random range for Lemma 4.3 checks.
  uint64_t r0() const;

 private:
  uint64_t master_seed_;
  PrngKind kind_;
  int bits_;
  std::unordered_map<ObjectId, CmObject> objects_;
  std::vector<ObjectId> order_;
  int64_t total_blocks_ = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_STORAGE_CATALOG_H_
