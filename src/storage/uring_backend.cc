#include "storage/uring_backend.h"

#include <fcntl.h>
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace scaddar {

namespace {

int UringSetup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_setup, entries, params));
}

int UringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
               unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

int UringRegister(int ring_fd, unsigned opcode, const void* arg,
                  unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, ring_fd, opcode, arg, nr_args));
}

int64_t AlignDownToSector(int64_t len) { return len & ~int64_t{4095}; }

template <typename T>
T* RingPtr(void* base, unsigned offset) {
  return reinterpret_cast<T*>(static_cast<char*>(base) + offset);
}

}  // namespace

bool UringAvailable() {
  static const bool available = [] {
    io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    const int fd = UringSetup(2, &params);
    if (fd < 0) {
      return false;
    }
    ::close(fd);
    return true;
  }();
  return available;
}

UringBackend::UringBackend(std::string directory,
                           const BackendOptions& options)
    : StorageBackend(options), directory_(std::move(directory)) {
  MakeDirectories(directory_);
}

UringBackend::~UringBackend() {
  std::vector<IoCompletion> sink;
  (void)DrainCompletions(sink);
  for (auto& [id, ring] : rings_) {
    TeardownRing(ring);
  }
}

Status UringBackend::SetupRing(Ring& ring) {
  io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  // SINGLE_ISSUER + COOP_TASKRUN shave kernel-side bookkeeping; both are
  // newer than io_uring itself, so retry plain when the kernel objects.
  params.flags = IORING_SETUP_SINGLE_ISSUER | IORING_SETUP_COOP_TASKRUN;
  int fd = UringSetup(static_cast<unsigned>(queue_depth()), &params);
  if (fd < 0 && errno == EINVAL) {
    std::memset(&params, 0, sizeof(params));
    fd = UringSetup(static_cast<unsigned>(queue_depth()), &params);
  }
  if (fd < 0) {
    return UnavailableError(std::string("io_uring_setup: ") +
                            std::strerror(errno));
  }
  ring.ring_fd = fd;
  ring.sq_entries = params.sq_entries;
  ring.cq_entries = params.cq_entries;

  ring.sq_len = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  ring.cq_len = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap && ring.cq_len > ring.sq_len) {
    ring.sq_len = ring.cq_len;
  }
  ring.sq_mem = ::mmap(nullptr, ring.sq_len, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
  if (ring.sq_mem == MAP_FAILED) {
    ring.sq_mem = nullptr;
    TeardownRing(ring);
    return UnavailableError("mmap sq ring failed");
  }
  void* cq_base = ring.sq_mem;
  if (!single_mmap) {
    ring.cq_mem = ::mmap(nullptr, ring.cq_len, PROT_READ | PROT_WRITE,
                         MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
    if (ring.cq_mem == MAP_FAILED) {
      ring.cq_mem = nullptr;
      TeardownRing(ring);
      return UnavailableError("mmap cq ring failed");
    }
    cq_base = ring.cq_mem;
  }
  ring.sqes_len = params.sq_entries * sizeof(io_uring_sqe);
  void* sqes = ::mmap(nullptr, ring.sqes_len, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES);
  if (sqes == MAP_FAILED) {
    TeardownRing(ring);
    return UnavailableError("mmap sqes failed");
  }
  ring.sqes = static_cast<io_uring_sqe*>(sqes);

  ring.sq_head = RingPtr<unsigned>(ring.sq_mem, params.sq_off.head);
  ring.sq_tail = RingPtr<unsigned>(ring.sq_mem, params.sq_off.tail);
  ring.sq_mask = RingPtr<unsigned>(ring.sq_mem, params.sq_off.ring_mask);
  ring.sq_array = RingPtr<unsigned>(ring.sq_mem, params.sq_off.array);
  ring.cq_head = RingPtr<unsigned>(cq_base, params.cq_off.head);
  ring.cq_tail = RingPtr<unsigned>(cq_base, params.cq_off.tail);
  ring.cq_mask = RingPtr<unsigned>(cq_base, params.cq_off.ring_mask);
  ring.cqes = RingPtr<io_uring_cqe>(cq_base, params.cq_off.cqes);
  return OkStatus();
}

void UringBackend::TeardownRing(Ring& ring) {
  if (ring.sqes != nullptr) {
    ::munmap(ring.sqes, ring.sqes_len);
    ring.sqes = nullptr;
  }
  if (ring.cq_mem != nullptr) {
    ::munmap(ring.cq_mem, ring.cq_len);
    ring.cq_mem = nullptr;
  }
  if (ring.sq_mem != nullptr) {
    ::munmap(ring.sq_mem, ring.sq_len);
    ring.sq_mem = nullptr;
  }
  if (ring.ring_fd >= 0) {
    ::close(ring.ring_fd);
    ring.ring_fd = -1;
  }
  if (ring.file_fd >= 0) {
    ::close(ring.file_fd);
    ring.file_fd = -1;
  }
}

Status UringBackend::RegisterArenaOn(Ring& ring) {
  if (arena_base_ == nullptr || ring.buffers_registered) {
    return OkStatus();
  }
  iovec vec;
  vec.iov_base = arena_base_;
  vec.iov_len = static_cast<size_t>(arena_count_ * block_bytes());
  if (UringRegister(ring.ring_fd, IORING_REGISTER_BUFFERS, &vec, 1) < 0) {
    // Registration is an optimization (locked-memory limits can refuse
    // it); unregistered READ/WRITE opcodes keep everything working.
    return OkStatus();
  }
  ring.buffers_registered = true;
  return OkStatus();
}

Status UringBackend::RegisterBufferArena(std::byte* base, int64_t count) {
  arena_base_ = base;
  arena_count_ = count;
  for (auto& [id, ring] : rings_) {
    if (ring.buffers_registered) {
      UringRegister(ring.ring_fd, IORING_UNREGISTER_BUFFERS, nullptr, 0);
      ring.buffers_registered = false;
    }
    SCADDAR_RETURN_IF_ERROR(RegisterArenaOn(ring));
  }
  return OkStatus();
}

Status UringBackend::OpenDisk(PhysicalDiskId disk) {
  Ring& ring = rings_[disk];
  if (ring.ring_fd >= 0) {
    return OkStatus();
  }
  const std::string path =
      directory_ + "/disk_" + std::to_string(disk) + ".img";
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_DIRECT, 0644);
  if (fd < 0 && (errno == EINVAL || errno == ENOTSUP)) {
    fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  } else if (fd >= 0) {
    direct_ = true;
  }
  if (fd < 0) {
    rings_.erase(disk);
    return UnavailableError("open(" + path + "): " + std::strerror(errno));
  }
  ring.file_fd = fd;
  const Status setup = SetupRing(ring);
  if (!setup.ok()) {
    TeardownRing(ring);
    rings_.erase(disk);
    return setup;
  }
  return RegisterArenaOn(ring);
}

Status UringBackend::CloseDisk(PhysicalDiskId disk) {
  std::vector<IoCompletion> sink;
  SCADDAR_RETURN_IF_ERROR(DrainCompletions(sink));
  completed_.insert(completed_.end(), sink.begin(), sink.end());
  const auto it = rings_.find(disk);
  if (it == rings_.end()) {
    return NotFoundError("disk not open");
  }
  TeardownRing(it->second);
  rings_.erase(it);
  return OkStatus();
}

StatusOr<UringBackend::Ring*> UringBackend::Lookup(PhysicalDiskId disk) {
  const auto it = rings_.find(disk);
  if (it == rings_.end() || it->second.ring_fd < 0) {
    return NotFoundError("disk not open");
  }
  return &it->second;
}

Status UringBackend::PrepOp(Ring& ring, IoOp op, int64_t offset, void* addr,
                            int64_t len, int64_t token) {
  const unsigned head = __atomic_load_n(ring.sq_head, __ATOMIC_ACQUIRE);
  unsigned tail = *ring.sq_tail;
  if (tail - head >= ring.sq_entries) {
    SCADDAR_RETURN_IF_ERROR(SubmitRing(ring));
  }
  if (ring.in_flight + ring.to_submit >=
      static_cast<int64_t>(ring.cq_entries)) {
    // CQ about to overflow: push what we have and reap one batch.
    SCADDAR_RETURN_IF_ERROR(SubmitRing(ring));
    SCADDAR_RETURN_IF_ERROR(ReapRing(ring, 1));
  }
  tail = *ring.sq_tail;
  const unsigned index = tail & *ring.sq_mask;
  io_uring_sqe& sqe = ring.sqes[index];
  std::memset(&sqe, 0, sizeof(sqe));
  const bool in_arena =
      arena_base_ != nullptr && static_cast<std::byte*>(addr) >= arena_base_ &&
      static_cast<std::byte*>(addr) < arena_base_ + arena_count_ * block_bytes();
  const bool fixed = in_arena && ring.buffers_registered;
  if (op == IoOp::kRead) {
    sqe.opcode = fixed ? IORING_OP_READ_FIXED : IORING_OP_READ;
  } else {
    sqe.opcode = fixed ? IORING_OP_WRITE_FIXED : IORING_OP_WRITE;
  }
  sqe.fd = ring.file_fd;
  sqe.off = static_cast<__u64>(offset);
  sqe.addr = reinterpret_cast<__u64>(addr);
  sqe.len = static_cast<__u32>(len);
  sqe.buf_index = 0;  // The arena is registered as one iovec.
  // Low bit carries the opcode so reaping can split read/write stats.
  sqe.user_data =
      (static_cast<__u64>(token) << 1) | (op == IoOp::kWrite ? 1 : 0);
  ring.sq_array[index] = index;
  __atomic_store_n(ring.sq_tail, tail + 1, __ATOMIC_RELEASE);
  ++ring.to_submit;
  return OkStatus();
}

StatusOr<int64_t> UringBackend::EnqueueRead(PhysicalDiskId disk, int64_t slot,
                                            std::byte* buf) {
  SCADDAR_ASSIGN_OR_RETURN(Ring * ring, Lookup(disk));
  const int64_t token = next_token_++;
  const IoFault fault = NextFault(disk, IoOp::kRead);
  if (fault == IoFault::kEio) {
    IoCompletion completion;
    completion.token = token;
    completion.status = UnavailableError("injected EIO on read");
    completed_.push_back(std::move(completion));
    return token;
  }
  int64_t len = block_bytes();
  if (fault == IoFault::kShort) {
    len /= 2;
    if (direct_) {
      len = AlignDownToSector(len);
    }
  }
  SCADDAR_RETURN_IF_ERROR(
      PrepOp(*ring, IoOp::kRead, slot * block_bytes(), buf, len, token));
  return token;
}

StatusOr<int64_t> UringBackend::EnqueueWrite(PhysicalDiskId disk,
                                             int64_t slot,
                                             const std::byte* buf) {
  SCADDAR_ASSIGN_OR_RETURN(Ring * ring, Lookup(disk));
  const int64_t token = next_token_++;
  const IoFault fault = NextFault(disk, IoOp::kWrite);
  if (fault == IoFault::kEio) {
    IoCompletion completion;
    completion.token = token;
    completion.status = UnavailableError("injected EIO on write");
    completed_.push_back(std::move(completion));
    return token;
  }
  int64_t len = block_bytes();
  if (fault == IoFault::kShort) {
    len /= 2;
    if (direct_) {
      len = AlignDownToSector(len);
    }
  }
  SCADDAR_RETURN_IF_ERROR(PrepOp(*ring, IoOp::kWrite, slot * block_bytes(),
                                 const_cast<std::byte*>(buf), len, token));
  return token;
}

Status UringBackend::SubmitRing(Ring& ring) {
  if (ring.to_submit == 0) {
    return OkStatus();
  }
  const int res = UringEnter(ring.ring_fd, ring.to_submit, 0, 0);
  if (res < 0) {
    return UnavailableError(std::string("io_uring_enter: ") +
                            std::strerror(errno));
  }
  ring.in_flight += res;
  ring.to_submit -= static_cast<unsigned>(res);
  ++stats_.submit_batches;
  return OkStatus();
}

Status UringBackend::ReapRing(Ring& ring, int64_t min_complete) {
  int64_t reaped = 0;
  while (true) {
    unsigned head = *ring.cq_head;
    const unsigned tail = __atomic_load_n(ring.cq_tail, __ATOMIC_ACQUIRE);
    while (head != tail) {
      const io_uring_cqe& cqe = ring.cqes[head & *ring.cq_mask];
      IoCompletion completion;
      completion.token = static_cast<int64_t>(cqe.user_data >> 1);
      if (cqe.res < 0) {
        completion.status = UnavailableError(std::string("io_uring op: ") +
                                             std::strerror(-cqe.res));
      } else {
        completion.bytes = cqe.res;
        ((cqe.user_data & 1) != 0 ? stats_.writes : stats_.reads)++;
      }
      completed_.push_back(std::move(completion));
      ++head;
      ++reaped;
      --ring.in_flight;
    }
    __atomic_store_n(ring.cq_head, head, __ATOMIC_RELEASE);
    if (reaped >= min_complete || ring.in_flight == 0) {
      return OkStatus();
    }
    const unsigned want = static_cast<unsigned>(min_complete - reaped);
    const int res =
        UringEnter(ring.ring_fd, 0, want, IORING_ENTER_GETEVENTS);
    if (res < 0 && errno != EINTR) {
      return UnavailableError(std::string("io_uring_enter(wait): ") +
                              std::strerror(errno));
    }
  }
}

Status UringBackend::Flush(PhysicalDiskId disk) {
  SCADDAR_ASSIGN_OR_RETURN(Ring * ring, Lookup(disk));
  SCADDAR_CHECK(ring->to_submit == 0 && ring->in_flight == 0);
  if (::fdatasync(ring->file_fd) != 0) {
    return UnavailableError(std::string("fdatasync: ") +
                            std::strerror(errno));
  }
  ++stats_.flushes;
  return OkStatus();
}

Status UringBackend::SubmitAll() {
  for (auto& [disk, ring] : rings_) {
    SCADDAR_RETURN_IF_ERROR(SubmitRing(ring));
  }
  return OkStatus();
}

Status UringBackend::DrainCompletions(std::vector<IoCompletion>& out) {
  SCADDAR_RETURN_IF_ERROR(SubmitAll());
  for (auto& [disk, ring] : rings_) {
    while (ring.in_flight > 0) {
      SCADDAR_RETURN_IF_ERROR(ReapRing(ring, ring.in_flight));
    }
  }
  out.insert(out.end(), completed_.begin(), completed_.end());
  completed_.clear();
  return OkStatus();
}

}  // namespace scaddar
