#include "storage/block_io.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace scaddar {

namespace {

constexpr uint64_t kImageMagic = 0x5caddab10c4b1e55ull;
constexpr int64_t kHeaderBytes = 16;
constexpr std::string_view kLayoutHeader = "layout-v1";

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t ImageSeed(BlockRef ref, uint64_t seed) {
  uint64_t state = seed ^ (static_cast<uint64_t>(ref.object) * 0x100000001b3ull);
  state ^= static_cast<uint64_t>(ref.block) + 0x9e3779b97f4a7c15ull;
  return SplitMix64(state);
}

StatusOr<int64_t> ParseInt(std::string_view token) {
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return InvalidArgumentError("malformed integer in layout");
  }
  return value;
}

std::vector<std::string_view> Split(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') {
      ++pos;
    }
    const size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') {
      ++pos;
    }
    if (pos > start) {
      tokens.push_back(line.substr(start, pos - start));
    }
  }
  return tokens;
}

void AppendInt(std::string& out, int64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), " %lld",
                static_cast<long long>(value));
  out += buffer;
}

}  // namespace

void BlockIoEngine::FreeDeleter::operator()(std::byte* p) const {
  std::free(p);
}

void BlockIoEngine::FillImage(BlockRef ref, uint64_t seed, std::byte* out,
                              int64_t len) {
  SCADDAR_CHECK(len >= kHeaderBytes);
  const uint64_t header[2] = {kImageMagic ^ static_cast<uint64_t>(ref.object),
                              static_cast<uint64_t>(ref.block)};
  std::memcpy(out, header, sizeof(header));
  uint64_t state = ImageSeed(ref, seed);
  int64_t offset = kHeaderBytes;
  while (offset + 8 <= len) {
    const uint64_t word = SplitMix64(state);
    std::memcpy(out + offset, &word, 8);
    offset += 8;
  }
  if (offset < len) {
    const uint64_t word = SplitMix64(state);
    std::memcpy(out + offset, &word, static_cast<size_t>(len - offset));
  }
}

bool BlockIoEngine::CheckImage(BlockRef ref, uint64_t seed,
                               const std::byte* data, int64_t len) {
  if (len < kHeaderBytes) {
    return false;
  }
  uint64_t header[2];
  std::memcpy(header, data, sizeof(header));
  if (header[0] != (kImageMagic ^ static_cast<uint64_t>(ref.object)) ||
      header[1] != static_cast<uint64_t>(ref.block)) {
    return false;
  }
  uint64_t state = ImageSeed(ref, seed);
  int64_t offset = kHeaderBytes;
  while (offset + 8 <= len) {
    const uint64_t expected = SplitMix64(state);
    uint64_t actual = 0;
    std::memcpy(&actual, data + offset, 8);
    if (actual != expected) {
      return false;
    }
    offset += 8;
  }
  if (offset < len) {
    const uint64_t expected = SplitMix64(state);
    if (std::memcmp(data + offset, &expected,
                    static_cast<size_t>(len - offset)) != 0) {
      return false;
    }
  }
  return true;
}

BlockIoEngine::BlockIoEngine(const Options& options) : options_(options) {}

BlockIoEngine::~BlockIoEngine() = default;

StatusOr<std::unique_ptr<BlockIoEngine>> BlockIoEngine::Create(
    const Options& options) {
  if (options.block_bytes < 4096 || options.block_bytes % 4096 != 0) {
    return InvalidArgumentError(
        "block_bytes must be a positive multiple of 4096");
  }
  if (options.arena_blocks < 1) {
    return InvalidArgumentError("arena_blocks must be >= 1");
  }
  std::unique_ptr<BlockIoEngine> engine(new BlockIoEngine(options));
  SCADDAR_RETURN_IF_ERROR(engine->Init());
  return engine;
}

Status BlockIoEngine::Init() {
  BackendOptions backend_options;
  backend_options.block_bytes = options_.block_bytes;
  backend_options.queue_depth = options_.queue_depth;
  backend_options.sync_workers = options_.sync_workers;
  SCADDAR_ASSIGN_OR_RETURN(
      backend_, MakeStorageBackend(options_.spec, backend_options));
  arena_.reset(static_cast<std::byte*>(std::aligned_alloc(
      4096, static_cast<size_t>(options_.arena_blocks *
                                options_.block_bytes))));
  scratch_.reset(static_cast<std::byte*>(
      std::aligned_alloc(4096, static_cast<size_t>(options_.block_bytes))));
  if (arena_ == nullptr || scratch_ == nullptr) {
    return ResourceExhaustedError("aligned buffer allocation failed");
  }
  return backend_->RegisterBufferArena(arena_.get(), options_.arena_blocks);
}

BlockIoEngine::AlignedPtr BlockIoEngine::AllocBlock() const {
  return AlignedPtr(static_cast<std::byte*>(
      std::aligned_alloc(4096, static_cast<size_t>(options_.block_bytes))));
}

Status BlockIoEngine::EnsureDisk(PhysicalDiskId disk) {
  if (open_disks_.count(disk) != 0) {
    return OkStatus();
  }
  SCADDAR_RETURN_IF_ERROR(backend_->OpenDisk(disk));
  open_disks_.insert(disk);
  layouts_.try_emplace(disk);
  return OkStatus();
}

int64_t BlockIoEngine::AllocSlot(PhysicalDiskId disk) {
  DiskLayout& layout = layouts_[disk];
  if (!layout.free_slots.empty()) {
    const int64_t slot = layout.free_slots.back();
    layout.free_slots.pop_back();
    return slot;
  }
  return layout.next_slot++;
}

void BlockIoEngine::FreeSlot(SlotLoc loc) {
  layouts_[loc.disk].free_slots.push_back(loc.slot);
}

StatusOr<BlockIoEngine::SlotLoc> BlockIoEngine::AuthoritativeLoc(
    BlockRef ref) const {
  const auto it = objects_.find(ref.object);
  if (it == objects_.end() || ref.block < 0 ||
      ref.block >= static_cast<BlockIndex>(it->second.size())) {
    return NotFoundError("unknown block");
  }
  return it->second[static_cast<size_t>(ref.block)];
}

Status BlockIoEngine::DrainAndDispatch() {
  std::vector<IoCompletion> completions;
  SCADDAR_RETURN_IF_ERROR(backend_->DrainCompletions(completions));
  for (IoCompletion& completion : completions) {
    const auto it = pending_.find(completion.token);
    SCADDAR_CHECK(it != pending_.end());
    const PendingTag tag = it->second;
    pending_.erase(it);
    const bool full = completion.status.ok() &&
                      completion.bytes == options_.block_bytes;
    switch (tag.kind) {
      case PendingTag::Kind::kServeRead: {
        const std::byte* buf =
            arena_.get() + static_cast<int64_t>(tag.index) *
                               options_.block_bytes;
        // Header-only verification on the hot path; full-image checks are
        // for the copy protocol and tests.
        uint64_t header[2] = {0, 0};
        if (full) {
          std::memcpy(header, buf, sizeof(header));
        }
        const bool intact =
            full &&
            header[0] ==
                (kImageMagic ^ static_cast<uint64_t>(tag.ref.object)) &&
            header[1] == static_cast<uint64_t>(tag.ref.block);
        (intact ? stats_.serve_reads : stats_.serve_errors)++;
        break;
      }
      case PendingTag::Kind::kCopyRead: {
        PendingCopy& copy = pending_copies_[tag.index];
        if (!full || !CheckImage(copy.ref, options_.content_seed,
                                 copy.buf.get(), options_.block_bytes)) {
          copy.failed = true;
        }
        break;
      }
      case PendingTag::Kind::kCopyWrite: {
        if (!full) {
          pending_copies_[tag.index].failed = true;
        }
        break;
      }
      case PendingTag::Kind::kPlaceWrite: {
        if (!full) {
          ++place_write_failures_;
        }
        break;
      }
      case PendingTag::Kind::kSync: {
        sync_results_[completion.token] = std::move(completion);
        break;
      }
    }
  }
  return OkStatus();
}

StatusOr<bool> BlockIoEngine::SyncRead(SlotLoc loc, std::byte* buf) {
  SCADDAR_RETURN_IF_ERROR(EnsureDisk(loc.disk));
  SCADDAR_ASSIGN_OR_RETURN(const int64_t token,
                           backend_->EnqueueRead(loc.disk, loc.slot, buf));
  pending_[token] = PendingTag{PendingTag::Kind::kSync, BlockRef{}, 0};
  SCADDAR_RETURN_IF_ERROR(DrainAndDispatch());
  const auto it = sync_results_.find(token);
  SCADDAR_CHECK(it != sync_results_.end());
  const bool full =
      it->second.status.ok() && it->second.bytes == options_.block_bytes;
  sync_results_.erase(it);
  return full;
}

StatusOr<bool> BlockIoEngine::SyncWrite(SlotLoc loc, const std::byte* buf) {
  SCADDAR_RETURN_IF_ERROR(EnsureDisk(loc.disk));
  SCADDAR_ASSIGN_OR_RETURN(const int64_t token,
                           backend_->EnqueueWrite(loc.disk, loc.slot, buf));
  pending_[token] = PendingTag{PendingTag::Kind::kSync, BlockRef{}, 0};
  SCADDAR_RETURN_IF_ERROR(DrainAndDispatch());
  const auto it = sync_results_.find(token);
  SCADDAR_CHECK(it != sync_results_.end());
  const bool full =
      it->second.status.ok() && it->second.bytes == options_.block_bytes;
  sync_results_.erase(it);
  return full;
}

Status BlockIoEngine::PlaceObject(ObjectId id,
                                  std::span<const PhysicalDiskId> locations) {
  if (objects_.count(id) != 0) {
    return AlreadyExistsError("object already placed");
  }
  std::vector<SlotLoc> row;
  row.reserve(locations.size());
  for (const PhysicalDiskId disk : locations) {
    SCADDAR_RETURN_IF_ERROR(EnsureDisk(disk));
    row.push_back(SlotLoc{disk, AllocSlot(disk)});
  }
  // Chunked batch writes: fill a pool of image buffers, push the whole
  // chunk down in one submission per disk, reclaim, repeat.
  const size_t chunk =
      std::max<size_t>(static_cast<size_t>(options_.queue_depth), 32);
  std::vector<AlignedPtr> buffers;
  place_write_failures_ = 0;
  for (size_t begin = 0; begin < row.size(); begin += chunk) {
    const size_t end = std::min(row.size(), begin + chunk);
    while (buffers.size() < end - begin) {
      buffers.push_back(AllocBlock());
      if (buffers.back() == nullptr) {
        return ResourceExhaustedError("image buffer allocation failed");
      }
    }
    for (size_t i = begin; i < end; ++i) {
      const BlockRef ref{id, static_cast<BlockIndex>(i)};
      std::byte* buf = buffers[i - begin].get();
      FillImage(ref, options_.content_seed, buf, options_.block_bytes);
      SCADDAR_ASSIGN_OR_RETURN(
          const int64_t token,
          backend_->EnqueueWrite(row[i].disk, row[i].slot, buf));
      pending_[token] =
          PendingTag{PendingTag::Kind::kPlaceWrite, ref, i};
    }
    SCADDAR_RETURN_IF_ERROR(DrainAndDispatch());
  }
  if (place_write_failures_ != 0) {
    for (const SlotLoc loc : row) {
      FreeSlot(loc);
    }
    return UnavailableError("place writes failed");
  }
  stats_.blocks_placed += static_cast<int64_t>(row.size());
  objects_.emplace(id, std::move(row));
  return OkStatus();
}

Status BlockIoEngine::DropObject(ObjectId id) {
  const auto it = objects_.find(id);
  if (it == objects_.end()) {
    return NotFoundError("unknown object");
  }
  for (const SlotLoc loc : it->second) {
    FreeSlot(loc);
  }
  objects_.erase(it);
  const auto staged = staged_.find(id);
  if (staged != staged_.end()) {
    for (const auto& [block, loc] : staged->second) {
      FreeSlot(loc);
    }
    staged_.erase(staged);
  }
  std::erase_if(pending_copies_,
                [id](const PendingCopy& c) { return c.ref.object == id; });
  return OkStatus();
}

Status BlockIoEngine::ApplyMove(BlockRef ref, PhysicalDiskId from,
                                PhysicalDiskId to) {
  SCADDAR_ASSIGN_OR_RETURN(const SlotLoc source, AuthoritativeLoc(ref));
  if (source.disk != from) {
    return FailedPreconditionError("block is not on the claimed source");
  }
  SCADDAR_ASSIGN_OR_RETURN(const bool read_ok,
                           SyncRead(source, scratch_.get()));
  if (!read_ok) {
    return UnavailableError("move: source read failed");
  }
  if (!CheckImage(ref, options_.content_seed, scratch_.get(),
                  options_.block_bytes)) {
    return DataLossError("move: source image corrupt");
  }
  SCADDAR_RETURN_IF_ERROR(EnsureDisk(to));
  const SlotLoc target{to, AllocSlot(to)};
  SCADDAR_ASSIGN_OR_RETURN(const bool write_ok,
                           SyncWrite(target, scratch_.get()));
  if (!write_ok) {
    FreeSlot(target);
    return UnavailableError("move: target write failed");
  }
  SCADDAR_RETURN_IF_ERROR(backend_->Flush(to));
  objects_[ref.object][static_cast<size_t>(ref.block)] = target;
  FreeSlot(source);
  ++stats_.moves_applied;
  return OkStatus();
}

Status BlockIoEngine::StageCopy(BlockRef ref, PhysicalDiskId from,
                                PhysicalDiskId to) {
  SCADDAR_ASSIGN_OR_RETURN(const SlotLoc source, AuthoritativeLoc(ref));
  if (source.disk != from) {
    return FailedPreconditionError("block is not on the claimed source");
  }
  auto& per_object = staged_[ref.object];
  if (per_object.count(ref.block) != 0) {
    return AlreadyExistsError("block already staged");
  }
  SCADDAR_RETURN_IF_ERROR(EnsureDisk(to));
  const SlotLoc target{to, AllocSlot(to)};
  per_object.emplace(ref.block, target);
  PendingCopy copy;
  copy.ref = ref;
  copy.from = source;
  copy.to = target;
  pending_copies_.push_back(std::move(copy));
  return OkStatus();
}

Status BlockIoEngine::CommitStaged(BlockRef ref, PhysicalDiskId from,
                                   PhysicalDiskId to) {
  SCADDAR_ASSIGN_OR_RETURN(const SlotLoc source, AuthoritativeLoc(ref));
  if (source.disk != from) {
    return FailedPreconditionError("block is not on the claimed source");
  }
  const auto per_object = staged_.find(ref.object);
  if (per_object == staged_.end()) {
    return NotFoundError("no staged copy");
  }
  const auto it = per_object->second.find(ref.block);
  if (it == per_object->second.end() || it->second.disk != to) {
    return NotFoundError("no staged copy on the claimed target");
  }
  objects_[ref.object][static_cast<size_t>(ref.block)] = it->second;
  per_object->second.erase(it);
  if (per_object->second.empty()) {
    staged_.erase(per_object);
  }
  FreeSlot(source);
  return OkStatus();
}

Status BlockIoEngine::AbortStaged(BlockRef ref) {
  const auto per_object = staged_.find(ref.object);
  if (per_object == staged_.end()) {
    return NotFoundError("no staged copy");
  }
  const auto it = per_object->second.find(ref.block);
  if (it == per_object->second.end()) {
    return NotFoundError("no staged copy");
  }
  FreeSlot(it->second);
  per_object->second.erase(it);
  if (per_object->second.empty()) {
    staged_.erase(per_object);
  }
  std::erase_if(pending_copies_,
                [ref](const PendingCopy& c) { return c.ref == ref; });
  return OkStatus();
}

StatusOr<bool> BlockIoEngine::ValidateStagedImage(BlockRef ref) {
  const auto per_object = staged_.find(ref.object);
  if (per_object == staged_.end()) {
    return NotFoundError("no staged copy");
  }
  const auto it = per_object->second.find(ref.block);
  if (it == per_object->second.end()) {
    return NotFoundError("no staged copy");
  }
  SCADDAR_ASSIGN_OR_RETURN(const bool full,
                           SyncRead(it->second, scratch_.get()));
  return full && CheckImage(ref, options_.content_seed, scratch_.get(),
                            options_.block_bytes);
}

Status BlockIoEngine::EnqueueServeRead(BlockRef ref, PhysicalDiskId disk) {
  SCADDAR_ASSIGN_OR_RETURN(const SlotLoc loc, AuthoritativeLoc(ref));
  SCADDAR_DCHECK(loc.disk == disk);
  if (serve_in_flight_ ==
      static_cast<size_t>(options_.arena_blocks)) {
    SCADDAR_RETURN_IF_ERROR(DrainAndDispatch());
    serve_in_flight_ = 0;
  }
  std::byte* buf = arena_.get() + static_cast<int64_t>(serve_in_flight_) *
                                      options_.block_bytes;
  SCADDAR_RETURN_IF_ERROR(EnsureDisk(loc.disk));
  SCADDAR_ASSIGN_OR_RETURN(const int64_t token,
                           backend_->EnqueueRead(loc.disk, loc.slot, buf));
  pending_[token] =
      PendingTag{PendingTag::Kind::kServeRead, ref, serve_in_flight_};
  ++serve_in_flight_;
  return OkStatus();
}

Status BlockIoEngine::FinishServeRound() {
  if (serve_in_flight_ == 0) {
    return OkStatus();
  }
  SCADDAR_RETURN_IF_ERROR(DrainAndDispatch());
  serve_in_flight_ = 0;
  return OkStatus();
}

Status BlockIoEngine::FinishMigrationRound(std::vector<BlockRef>* failed) {
  if (failed != nullptr) {
    failed->clear();
  }
  if (pending_copies_.empty()) {
    return OkStatus();
  }
  // Phase 1: batched source reads (one submission per source disk).
  for (size_t i = 0; i < pending_copies_.size(); ++i) {
    PendingCopy& copy = pending_copies_[i];
    copy.buf = AllocBlock();
    if (copy.buf == nullptr) {
      return ResourceExhaustedError("copy buffer allocation failed");
    }
    SCADDAR_ASSIGN_OR_RETURN(
        const int64_t token,
        backend_->EnqueueRead(copy.from.disk, copy.from.slot,
                              copy.buf.get()));
    pending_[token] = PendingTag{PendingTag::Kind::kCopyRead, copy.ref, i};
  }
  SCADDAR_RETURN_IF_ERROR(DrainAndDispatch());

  // Phase 2: batched target writes for the copies whose source read was
  // intact (one submission per target disk), then one flush per disk.
  std::unordered_set<PhysicalDiskId> touched;
  for (size_t i = 0; i < pending_copies_.size(); ++i) {
    PendingCopy& copy = pending_copies_[i];
    if (copy.failed) {
      continue;
    }
    SCADDAR_ASSIGN_OR_RETURN(
        const int64_t token,
        backend_->EnqueueWrite(copy.to.disk, copy.to.slot, copy.buf.get()));
    pending_[token] = PendingTag{PendingTag::Kind::kCopyWrite, copy.ref, i};
    touched.insert(copy.to.disk);
  }
  SCADDAR_RETURN_IF_ERROR(DrainAndDispatch());
  for (const PhysicalDiskId disk : touched) {
    SCADDAR_RETURN_IF_ERROR(backend_->Flush(disk));
  }

  for (const PendingCopy& copy : pending_copies_) {
    if (copy.failed) {
      ++stats_.copy_failures;
      if (failed != nullptr) {
        failed->push_back(copy.ref);
      }
    }
  }
  pending_copies_.clear();
  return OkStatus();
}

StatusOr<std::vector<std::byte>> BlockIoEngine::ReadImage(BlockRef ref) {
  SCADDAR_ASSIGN_OR_RETURN(const SlotLoc loc, AuthoritativeLoc(ref));
  SCADDAR_ASSIGN_OR_RETURN(const bool full, SyncRead(loc, scratch_.get()));
  if (!full) {
    return DataLossError("image read failed or short");
  }
  return std::vector<std::byte>(scratch_.get(),
                                scratch_.get() + options_.block_bytes);
}

std::string BlockIoEngine::SerializeLayout() const {
  std::string out(kLayoutHeader);
  out += '\n';
  out += "seed";
  AppendInt(out, static_cast<int64_t>(options_.content_seed));
  AppendInt(out, options_.block_bytes);
  out += '\n';

  std::vector<PhysicalDiskId> disk_ids;
  disk_ids.reserve(layouts_.size());
  for (const auto& [id, layout] : layouts_) {
    disk_ids.push_back(id);
  }
  std::sort(disk_ids.begin(), disk_ids.end());
  for (const PhysicalDiskId id : disk_ids) {
    const DiskLayout& layout = layouts_.at(id);
    out += "disk";
    AppendInt(out, id);
    AppendInt(out, layout.next_slot);
    AppendInt(out, static_cast<int64_t>(layout.free_slots.size()));
    for (const int64_t slot : layout.free_slots) {
      AppendInt(out, slot);
    }
    out += '\n';
  }

  std::vector<ObjectId> object_ids;
  object_ids.reserve(objects_.size());
  for (const auto& [id, row] : objects_) {
    object_ids.push_back(id);
  }
  std::sort(object_ids.begin(), object_ids.end());
  for (const ObjectId id : object_ids) {
    const std::vector<SlotLoc>& row = objects_.at(id);
    out += "object";
    AppendInt(out, id);
    AppendInt(out, static_cast<int64_t>(row.size()));
    for (const SlotLoc loc : row) {
      AppendInt(out, loc.disk);
      AppendInt(out, loc.slot);
    }
    out += '\n';
  }

  std::vector<std::pair<BlockRef, SlotLoc>> staged;
  for (const auto& [object, blocks] : staged_) {
    for (const auto& [block, loc] : blocks) {
      staged.push_back({BlockRef{object, block}, loc});
    }
  }
  std::sort(staged.begin(), staged.end(),
            [](const auto& a, const auto& b) {
              return a.first.object != b.first.object
                         ? a.first.object < b.first.object
                         : a.first.block < b.first.block;
            });
  for (const auto& [ref, loc] : staged) {
    out += "staged";
    AppendInt(out, ref.object);
    AppendInt(out, ref.block);
    AppendInt(out, loc.disk);
    AppendInt(out, loc.slot);
    out += '\n';
  }
  return out;
}

Status BlockIoEngine::RestoreLayout(std::string_view text) {
  decltype(objects_) objects;
  decltype(staged_) staged;
  decltype(layouts_) layouts;
  bool header_seen = false;
  std::string_view rest = text;
  while (!rest.empty()) {
    const size_t eol = rest.find('\n');
    const std::string_view line = rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view()
                                         : rest.substr(eol + 1);
    const std::vector<std::string_view> tokens = Split(line);
    if (tokens.empty()) {
      continue;
    }
    if (!header_seen) {
      if (tokens.size() != 1 || tokens[0] != kLayoutHeader) {
        return InvalidArgumentError("unrecognized layout header");
      }
      header_seen = true;
      continue;
    }
    if (tokens[0] == "seed" && tokens.size() == 3) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t seed, ParseInt(tokens[1]));
      SCADDAR_ASSIGN_OR_RETURN(const int64_t block, ParseInt(tokens[2]));
      if (static_cast<uint64_t>(seed) != options_.content_seed ||
          block != options_.block_bytes) {
        return FailedPreconditionError(
            "layout was written with different seed/block size");
      }
    } else if (tokens[0] == "disk" && tokens.size() >= 4) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t id, ParseInt(tokens[1]));
      DiskLayout& layout = layouts[id];
      SCADDAR_ASSIGN_OR_RETURN(layout.next_slot, ParseInt(tokens[2]));
      SCADDAR_ASSIGN_OR_RETURN(const int64_t free_count,
                               ParseInt(tokens[3]));
      if (static_cast<int64_t>(tokens.size()) != 4 + free_count) {
        return InvalidArgumentError("disk line free-list count mismatch");
      }
      for (int64_t i = 0; i < free_count; ++i) {
        SCADDAR_ASSIGN_OR_RETURN(const int64_t slot,
                                 ParseInt(tokens[4 + static_cast<size_t>(i)]));
        layout.free_slots.push_back(slot);
      }
    } else if (tokens[0] == "object" && tokens.size() >= 3) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t id, ParseInt(tokens[1]));
      SCADDAR_ASSIGN_OR_RETURN(const int64_t blocks, ParseInt(tokens[2]));
      if (static_cast<int64_t>(tokens.size()) != 3 + 2 * blocks) {
        return InvalidArgumentError("object line block count mismatch");
      }
      std::vector<SlotLoc> row;
      row.reserve(static_cast<size_t>(blocks));
      for (int64_t i = 0; i < blocks; ++i) {
        SlotLoc loc;
        SCADDAR_ASSIGN_OR_RETURN(
            loc.disk, ParseInt(tokens[3 + static_cast<size_t>(2 * i)]));
        SCADDAR_ASSIGN_OR_RETURN(
            loc.slot, ParseInt(tokens[4 + static_cast<size_t>(2 * i)]));
        row.push_back(loc);
      }
      objects.emplace(id, std::move(row));
    } else if (tokens[0] == "staged" && tokens.size() == 5) {
      SCADDAR_ASSIGN_OR_RETURN(const int64_t object, ParseInt(tokens[1]));
      SCADDAR_ASSIGN_OR_RETURN(const int64_t block, ParseInt(tokens[2]));
      SlotLoc loc;
      SCADDAR_ASSIGN_OR_RETURN(loc.disk, ParseInt(tokens[3]));
      SCADDAR_ASSIGN_OR_RETURN(loc.slot, ParseInt(tokens[4]));
      staged[object][block] = loc;
    } else {
      return InvalidArgumentError("unrecognized layout line");
    }
  }
  if (!header_seen) {
    return InvalidArgumentError("empty layout");
  }
  objects_ = std::move(objects);
  staged_ = std::move(staged);
  layouts_ = std::move(layouts);
  return OkStatus();
}

Status BlockIoEngine::SimulateCrashRestart() {
  // Crashes are injected between rounds' serve phases, never mid-serve.
  SCADDAR_CHECK(serve_in_flight_ == 0);
  // Queued-but-unexecuted staged copies are the volatile state a real
  // crash loses: their staged slots survive (metadata), their bytes never
  // landed — which is what Recover's image validation is for.
  pending_copies_.clear();
  pending_.clear();
  sync_results_.clear();
  const std::string text = SerializeLayout();
  objects_.clear();
  staged_.clear();
  layouts_.clear();
  SCADDAR_RETURN_IF_ERROR(RestoreLayout(text));
  for (const PhysicalDiskId disk : open_disks_) {
    SCADDAR_RETURN_IF_ERROR(backend_->CloseDisk(disk));
    SCADDAR_RETURN_IF_ERROR(backend_->OpenDisk(disk));
  }
  return OkStatus();
}

}  // namespace scaddar
