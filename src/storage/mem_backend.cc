#include "storage/mem_backend.h"

#include <cstring>

namespace scaddar {

Status MemBackend::OpenDisk(PhysicalDiskId disk) {
  regions_.try_emplace(disk);
  return OkStatus();
}

Status MemBackend::CloseDisk(PhysicalDiskId disk) {
  // The bytes are the "medium" here; closing only drops runtime state, of
  // which the mem backend has none.
  (void)disk;
  return OkStatus();
}

StatusOr<std::vector<std::byte>*> MemBackend::Region(PhysicalDiskId disk) {
  const auto it = regions_.find(disk);
  if (it == regions_.end()) {
    return NotFoundError("disk not open");
  }
  return &it->second;
}

StatusOr<int64_t> MemBackend::EnqueueRead(PhysicalDiskId disk, int64_t slot,
                                          std::byte* buf) {
  SCADDAR_ASSIGN_OR_RETURN(std::vector<std::byte>* region, Region(disk));
  const int64_t token = next_token_++;
  IoCompletion completion;
  completion.token = token;
  const IoFault fault = NextFault(disk, IoOp::kRead);
  if (fault == IoFault::kEio) {
    completion.status = UnavailableError("injected EIO on read");
  } else {
    int64_t len = block_bytes();
    if (fault == IoFault::kShort) {
      len /= 2;
    }
    const int64_t offset = slot * block_bytes();
    if (offset + len > static_cast<int64_t>(region->size())) {
      completion.status = OutOfRangeError("read past end of region");
    } else {
      std::memcpy(buf, region->data() + offset, static_cast<size_t>(len));
      completion.bytes = len;
      ++stats_.reads;
    }
  }
  completed_.push_back(std::move(completion));
  batch_open_ = true;
  return token;
}

StatusOr<int64_t> MemBackend::EnqueueWrite(PhysicalDiskId disk, int64_t slot,
                                           const std::byte* buf) {
  SCADDAR_ASSIGN_OR_RETURN(std::vector<std::byte>* region, Region(disk));
  const int64_t token = next_token_++;
  IoCompletion completion;
  completion.token = token;
  const IoFault fault = NextFault(disk, IoOp::kWrite);
  if (fault == IoFault::kEio) {
    completion.status = UnavailableError("injected EIO on write");
  } else {
    int64_t len = block_bytes();
    if (fault == IoFault::kShort) {
      len /= 2;
    }
    const int64_t offset = slot * block_bytes();
    if (offset + block_bytes() > static_cast<int64_t>(region->size())) {
      region->resize(static_cast<size_t>(offset + block_bytes()));
    }
    std::memcpy(region->data() + offset, buf, static_cast<size_t>(len));
    completion.bytes = len;
    ++stats_.writes;
  }
  completed_.push_back(std::move(completion));
  batch_open_ = true;
  return token;
}

Status MemBackend::Flush(PhysicalDiskId disk) {
  SCADDAR_RETURN_IF_ERROR(Region(disk).status());
  ++stats_.flushes;
  return OkStatus();
}

Status MemBackend::SubmitAll() {
  if (batch_open_) {
    ++stats_.submit_batches;
    batch_open_ = false;
  }
  return OkStatus();
}

Status MemBackend::DrainCompletions(std::vector<IoCompletion>& out) {
  SCADDAR_RETURN_IF_ERROR(SubmitAll());
  out.insert(out.end(), completed_.begin(), completed_.end());
  completed_.clear();
  return OkStatus();
}

}  // namespace scaddar
