#ifndef SCADDAR_STORAGE_DISK_ARRAY_H_
#define SCADDAR_STORAGE_DISK_ARRAY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/disk.h"
#include "util/statusor.h"

namespace scaddar {

class FaultInjector;

/// The physical disk farm. Disks are keyed by their stable `PhysicalDiskId`;
/// the placement layer's op log decides *which* ids are live, and the array
/// tracks the hardware-side state (specs, occupancy, service counters).
/// Retired disks are kept (inactive) so post-mortem stats survive removals.
class DiskArray {
 public:
  explicit DiskArray(const DiskSpec& default_spec)
      : default_spec_(default_spec) {}

  /// Brings the array in sync with the live id set: creates missing disks
  /// with `default_spec_` and deactivates ids no longer present. Removal
  /// requires the disk to be empty (the migration must have drained it) —
  /// fails with FailedPrecondition otherwise.
  Status SyncLiveSet(const std::vector<PhysicalDiskId>& live);

  /// Direct creation with a custom spec (heterogeneous extensions).
  Status AddDisk(PhysicalDiskId id, const DiskSpec& spec);

  bool IsLive(PhysicalDiskId id) const;
  StatusOr<SimDisk*> GetDisk(PhysicalDiskId id);
  StatusOr<const SimDisk*> GetDisk(PhysicalDiskId id) const;

  /// Live ids in ascending order.
  std::vector<PhysicalDiskId> live_ids() const;
  int64_t num_live() const { return num_live_; }

  /// Bumped on every live-set mutation (`SyncLiveSet`, `AddDisk`). Lets
  /// per-round consumers (the sharded commit phase) cache the live id list
  /// and `SimDisk` pointers instead of re-resolving them every round:
  /// `disks_` never erases entries, so cached pointers stay valid as long
  /// as the generation matches.
  uint64_t generation() const { return generation_; }

  /// Aggregate bandwidth of live disks (blocks per round).
  int64_t TotalBandwidth() const;

  /// Aggregate free capacity of live disks (blocks).
  int64_t TotalFreeCapacity() const;

  /// Occupancy of live disks in `live_ids()` order.
  std::vector<int64_t> LiveOccupancy() const;

  /// Attaches (or detaches, with null) the fault engine. The array is the
  /// rendezvous point: the migration executor and the servers read the
  /// injector from here, so one attachment covers every hook site. Detached
  /// — the default — each hook costs a single null-pointer branch.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

 private:
  DiskSpec default_spec_;
  FaultInjector* injector_ = nullptr;  // Not owned; may be null.
  std::unordered_map<PhysicalDiskId, SimDisk> disks_;
  std::unordered_map<PhysicalDiskId, bool> live_;
  int64_t num_live_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_STORAGE_DISK_ARRAY_H_
