#include "storage/disk.h"

#include "util/status.h"

namespace scaddar {

void SimDisk::AddBlocks(int64_t count) {
  SCADDAR_CHECK(count >= 0);
  num_blocks_ += count;
  SCADDAR_CHECK(num_blocks_ <= spec_.capacity_blocks);
}

void SimDisk::RemoveBlocks(int64_t count) {
  SCADDAR_CHECK(count >= 0);
  num_blocks_ -= count;
  SCADDAR_CHECK(num_blocks_ >= 0);
}

}  // namespace scaddar
