#ifndef SCADDAR_STORAGE_URING_BACKEND_H_
#define SCADDAR_STORAGE_URING_BACKEND_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/storage_backend.h"

struct io_uring_sqe;
struct io_uring_cqe;

namespace scaddar {

/// The io_uring backend: one submission ring per disk with
/// `options.queue_depth` entries, built on raw `io_uring_setup` /
/// `io_uring_enter` syscalls (no liburing dependency). A whole round's ops
/// for a disk go down in a single `io_uring_enter` — that batching, plus
/// registered fixed buffers for the serve-read arena, is where the backend
/// earns its keep over the sync backend's one-syscall-per-block workers.
///
/// Files and layout are identical to `SyncFileBackend` (one `disk_<id>.img`
/// per disk, images at `slot * block_bytes`), so a directory written by one
/// backend is readable by the other.
class UringBackend : public StorageBackend {
 public:
  UringBackend(std::string directory, const BackendOptions& options);
  ~UringBackend() override;

  std::string_view name() const override { return "uring"; }

  Status OpenDisk(PhysicalDiskId disk) override;
  Status CloseDisk(PhysicalDiskId disk) override;
  StatusOr<int64_t> EnqueueRead(PhysicalDiskId disk, int64_t slot,
                                std::byte* buf) override;
  StatusOr<int64_t> EnqueueWrite(PhysicalDiskId disk, int64_t slot,
                                 const std::byte* buf) override;
  Status Flush(PhysicalDiskId disk) override;
  Status SubmitAll() override;
  Status DrainCompletions(std::vector<IoCompletion>& out) override;
  Status RegisterBufferArena(std::byte* base, int64_t count) override;
  bool direct_io() const override { return direct_; }

  const std::string& directory() const { return directory_; }

 private:
  /// One mmapped ring pair plus the disk file it serves.
  struct Ring {
    int ring_fd = -1;
    int file_fd = -1;
    void* sq_mem = nullptr;
    size_t sq_len = 0;
    void* cq_mem = nullptr;   // Null when IORING_FEAT_SINGLE_MMAP took.
    size_t cq_len = 0;
    io_uring_sqe* sqes = nullptr;
    size_t sqes_len = 0;
    // Kernel-shared ring pointers (into the mmapped regions).
    unsigned* sq_head = nullptr;
    unsigned* sq_tail = nullptr;
    unsigned* sq_mask = nullptr;
    unsigned* sq_array = nullptr;
    unsigned* cq_head = nullptr;
    unsigned* cq_tail = nullptr;
    unsigned* cq_mask = nullptr;
    io_uring_cqe* cqes = nullptr;
    unsigned sq_entries = 0;
    unsigned cq_entries = 0;
    unsigned to_submit = 0;    // SQEs filled since the last enter.
    int64_t in_flight = 0;     // Submitted, not yet reaped.
    bool buffers_registered = false;
  };

  StatusOr<Ring*> Lookup(PhysicalDiskId disk);
  Status SetupRing(Ring& ring);
  void TeardownRing(Ring& ring);
  Status RegisterArenaOn(Ring& ring);
  /// Fills one SQE (auto-submitting when the SQ or CQ would overflow).
  Status PrepOp(Ring& ring, IoOp op, int64_t offset, void* addr, int64_t len,
                int64_t token);
  /// One io_uring_enter pushing `ring.to_submit` SQEs.
  Status SubmitRing(Ring& ring);
  /// Reaps available CQEs, blocking until at least `min_complete` arrive.
  Status ReapRing(Ring& ring, int64_t min_complete);

  std::string directory_;
  bool direct_ = false;
  std::byte* arena_base_ = nullptr;
  int64_t arena_count_ = 0;
  std::unordered_map<PhysicalDiskId, Ring> rings_;
  std::vector<IoCompletion> completed_;
  int64_t next_token_ = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_STORAGE_URING_BACKEND_H_
