#include "storage/move_journal.h"

#include <charconv>
#include <cstdio>

namespace scaddar {

namespace {

constexpr std::string_view kHeader = "moves-v1";

StatusOr<int64_t> ParseInt(std::string_view token) {
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return InvalidArgumentError("malformed integer in move journal");
  }
  return value;
}

std::vector<std::string_view> Split(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') {
      ++pos;
    }
    const size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') {
      ++pos;
    }
    if (pos > start) {
      tokens.push_back(line.substr(start, pos - start));
    }
  }
  return tokens;
}

}  // namespace

int64_t MoveJournal::Begin(BlockRef block, PhysicalDiskId from,
                           PhysicalDiskId to) {
  JournalEntry entry;
  entry.id = next_id_++;
  entry.block = block;
  entry.from = from;
  entry.to = to;
  entry.phase = JournalPhase::kIntent;
  entries_.push_back(entry);
  ++pending_;
  return entry.id;
}

void MoveJournal::MarkCopied(int64_t id) {
  for (JournalEntry& entry : entries_) {
    if (entry.id == id) {
      SCADDAR_CHECK(entry.phase == JournalPhase::kIntent);
      entry.phase = JournalPhase::kCopied;
      return;
    }
  }
  SCADDAR_CHECK(false && "MarkCopied: unknown journal id");
}

void MoveJournal::MarkCommitted(int64_t id) {
  for (JournalEntry& entry : entries_) {
    if (entry.id == id) {
      SCADDAR_CHECK(entry.phase == JournalPhase::kCopied);
      entry.phase = JournalPhase::kCommitted;
      --pending_;
      return;
    }
  }
  SCADDAR_CHECK(false && "MarkCommitted: unknown journal id");
}

void MoveJournal::MarkAborted(int64_t id) {
  for (JournalEntry& entry : entries_) {
    if (entry.id == id) {
      SCADDAR_CHECK(entry.phase == JournalPhase::kIntent);
      entry.phase = JournalPhase::kAborted;
      --pending_;
      return;
    }
  }
  SCADDAR_CHECK(false && "MarkAborted: unknown journal id");
}

void MoveJournal::Compact() {
  while (!entries_.empty() &&
         (entries_.front().phase == JournalPhase::kCommitted ||
          entries_.front().phase == JournalPhase::kAborted)) {
    entries_.pop_front();
  }
}

std::string MoveJournal::Serialize() const {
  std::string out(kHeader);
  out += '\n';
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer), "next %lld\n",
                static_cast<long long>(next_id_));
  out += buffer;
  for (const JournalEntry& entry : entries_) {
    std::snprintf(buffer, sizeof(buffer), "move %lld %lld %lld %lld %lld %d\n",
                  static_cast<long long>(entry.id),
                  static_cast<long long>(entry.block.object),
                  static_cast<long long>(entry.block.block),
                  static_cast<long long>(entry.from),
                  static_cast<long long>(entry.to),
                  static_cast<int>(entry.phase));
    out += buffer;
  }
  return out;
}

StatusOr<MoveJournal> MoveJournal::Deserialize(std::string_view text) {
  MoveJournal journal;
  bool header_seen = false;
  std::string_view rest = text;
  while (!rest.empty()) {
    const size_t eol = rest.find('\n');
    std::string_view line = rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view()
                                         : rest.substr(eol + 1);
    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    const std::vector<std::string_view> tokens = Split(line);
    if (tokens.empty()) {
      continue;
    }
    if (!header_seen) {
      if (tokens.size() != 1 || tokens[0] != kHeader) {
        return InvalidArgumentError("unrecognized move journal header");
      }
      header_seen = true;
      continue;
    }
    if (tokens[0] == "next" && tokens.size() == 2) {
      SCADDAR_ASSIGN_OR_RETURN(journal.next_id_, ParseInt(tokens[1]));
    } else if (tokens[0] == "move" && tokens.size() == 7) {
      JournalEntry entry;
      SCADDAR_ASSIGN_OR_RETURN(entry.id, ParseInt(tokens[1]));
      SCADDAR_ASSIGN_OR_RETURN(entry.block.object, ParseInt(tokens[2]));
      SCADDAR_ASSIGN_OR_RETURN(entry.block.block, ParseInt(tokens[3]));
      SCADDAR_ASSIGN_OR_RETURN(entry.from, ParseInt(tokens[4]));
      SCADDAR_ASSIGN_OR_RETURN(entry.to, ParseInt(tokens[5]));
      SCADDAR_ASSIGN_OR_RETURN(const int64_t phase, ParseInt(tokens[6]));
      if (phase < 0 || phase > static_cast<int64_t>(JournalPhase::kAborted)) {
        return InvalidArgumentError("move journal phase out of range");
      }
      entry.phase = static_cast<JournalPhase>(phase);
      journal.entries_.push_back(entry);
      if (entry.phase != JournalPhase::kCommitted &&
          entry.phase != JournalPhase::kAborted) {
        ++journal.pending_;
      }
    } else {
      return InvalidArgumentError("unrecognized move journal line");
    }
  }
  if (!header_seen) {
    return InvalidArgumentError("empty move journal");
  }
  return journal;
}

StatusOr<JournalRecoveryStats> MoveJournal::Recover(BlockStore& store) {
  JournalRecoveryStats stats;
  for (JournalEntry& entry : entries_) {
    if (entry.phase == JournalPhase::kCommitted ||
        entry.phase == JournalPhase::kAborted) {
      continue;
    }
    ++stats.scanned;
    if (entry.phase == JournalPhase::kIntent) {
      // Intent with no durable copy: nothing happened on disk. Discard; the
      // reconciliation scan re-discovers the move if it is still wanted.
      entry.phase = JournalPhase::kCommitted;
      --pending_;
      ++stats.discarded_intents;
      continue;
    }
    // kCopied: the staged bytes are durable. Roll the move forward — unless
    // the location flip itself already made it to disk before the crash.
    const StatusOr<PhysicalDiskId> location = store.LocationOf(entry.block);
    if (!location.ok()) {
      // Object vanished (dropped after the intent); its staged copies were
      // already released by DropObject.
      entry.phase = JournalPhase::kCommitted;
      --pending_;
      ++stats.discarded_intents;
      continue;
    }
    if (*location == entry.to) {
      // Flip was durable; only the commit record is missing. If the crash
      // landed between flip and commit-log there is no stage left to claim.
      entry.phase = JournalPhase::kCommitted;
      --pending_;
      ++stats.already_applied;
      continue;
    }
    if (*location != entry.from) {
      return InternalError(
          "journal replay: block is on neither source nor target");
    }
    const StatusOr<PhysicalDiskId> staged = store.StagedTarget(entry.block);
    if (!staged.ok() || *staged != entry.to) {
      return InternalError(
          "journal replay: copied record without a matching staged copy");
    }
    // The copied record promises staged bytes, but with a real backend the
    // stage write may have died in the submission queue (crash between the
    // log record and the batched submit) or landed short. Read the image
    // back before trusting it; a torn copy rolls *back* and the block is
    // re-discovered by reconciliation.
    SCADDAR_ASSIGN_OR_RETURN(const bool intact,
                             store.ValidateStagedImage(entry.block));
    if (!intact) {
      SCADDAR_RETURN_IF_ERROR(store.AbortStagedCopy(entry.block));
      entry.phase = JournalPhase::kAborted;
      --pending_;
      ++stats.torn_copies_released;
      continue;
    }
    SCADDAR_RETURN_IF_ERROR(
        store.CommitStagedMove(entry.block, entry.from, entry.to));
    entry.phase = JournalPhase::kCommitted;
    --pending_;
    ++stats.rolled_forward;
  }

  // Orphan sweep: every kCopied entry consumed its stage above, so any
  // staged copy still outstanding is a torn write from a crash between
  // StageCopy and the copied log record. Release them.
  for (const auto& [ref, disk] : store.StagedCopies()) {
    SCADDAR_RETURN_IF_ERROR(store.AbortStagedCopy(ref));
    ++stats.orphan_stages_released;
  }
  SCADDAR_CHECK(store.staged_blocks() == 0);
  return stats;
}

}  // namespace scaddar
