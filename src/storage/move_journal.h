#ifndef SCADDAR_STORAGE_MOVE_JOURNAL_H_
#define SCADDAR_STORAGE_MOVE_JOURNAL_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "core/types.h"
#include "storage/block_store.h"
#include "util/statusor.h"

namespace scaddar {

/// Durable state of one journaled move. Records advance strictly
/// kIntent -> kCopied -> kCommitted; a crash can strand an entry at any of
/// the first two. An intent whose copy failed (injected EIO, short write)
/// is closed out as kAborted — the move never happened and the block is
/// re-queued by the executor.
enum class JournalPhase {
  kIntent = 0,     // Move decided; nothing written to the target yet.
  kCopied = 1,     // Block bytes durably staged on the target disk.
  kCommitted = 2,  // Location flipped; the move is fully applied.
  kAborted = 3,    // Copy failed; the staged slot was released.
};

/// One write-ahead record: "block moves from -> to".
struct JournalEntry {
  int64_t id = 0;
  BlockRef block;
  PhysicalDiskId from = 0;
  PhysicalDiskId to = 0;
  JournalPhase phase = JournalPhase::kIntent;

  friend bool operator==(const JournalEntry&, const JournalEntry&) = default;
};

/// What `Recover` found and did.
struct JournalRecoveryStats {
  int64_t scanned = 0;           // Entries examined (non-committed).
  int64_t rolled_forward = 0;    // kCopied completed via the staged copy.
  int64_t already_applied = 0;   // kCopied whose flip was already durable.
  int64_t discarded_intents = 0; // kIntent dropped (reconciliation re-queues).
  int64_t orphan_stages_released = 0;  // Torn copies with no kCopied record.
  int64_t torn_copies_released = 0;    // kCopied whose staged *bytes* failed
                                       // image validation (a batched write
                                       // that never reached the medium).
};

/// The write-ahead move journal that makes migration crash-consistent: every
/// move logs intent -> copied -> committed around the `BlockStore` staged-
/// copy protocol, so a crash at *any* boundary replays — via `Recover` plus
/// the ordinary reconciliation scan — to exactly the placement the
/// uninterrupted run would have produced. Re-execution is idempotent:
/// recovery only ever completes or releases work, never repeats it.
///
/// The journal is the durable artifact a real deployment would fsync; the
/// simulation keeps it in memory and round-trips it through `Serialize` /
/// `Deserialize` at simulated crash points to prove the text form carries
/// everything recovery needs.
class MoveJournal {
 public:
  MoveJournal() = default;

  /// Appends an intent record; returns its id for the later phase marks.
  int64_t Begin(BlockRef block, PhysicalDiskId from, PhysicalDiskId to);

  /// Marks the entry's staged copy durable (id must exist and be kIntent).
  void MarkCopied(int64_t id);

  /// Marks the entry fully applied (id must exist and be kCopied).
  void MarkCommitted(int64_t id);

  /// Closes an intent whose copy failed (id must exist and be kIntent).
  /// The entry stops being pending; recovery skips it.
  void MarkAborted(int64_t id);

  /// Entries not yet committed.
  int64_t pending() const { return pending_; }
  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  const std::deque<JournalEntry>& entries() const { return entries_; }

  /// Drops the committed prefix (checkpoint truncation; keeps ids stable).
  void Compact();

  /// Text form ("moves-v1" header + one line per entry); round-trips via
  /// `Deserialize`.
  std::string Serialize() const;
  static StatusOr<MoveJournal> Deserialize(std::string_view text);

  /// Crash recovery: replays every non-committed entry against the durable
  /// `store` and releases orphaned staged copies, leaving the store with
  /// zero staged blocks and every journaled move either fully applied or
  /// fully undone. Idempotent — running it twice is a no-op the second
  /// time. Blocks whose moves were discarded are picked up by the caller's
  /// reconciliation scan (`MigrationExecutor::EnqueueReconciliation`).
  StatusOr<JournalRecoveryStats> Recover(BlockStore& store);

 private:
  std::deque<JournalEntry> entries_;
  int64_t next_id_ = 0;
  int64_t pending_ = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_STORAGE_MOVE_JOURNAL_H_
