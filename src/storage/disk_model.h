#ifndef SCADDAR_STORAGE_DISK_MODEL_H_
#define SCADDAR_STORAGE_DISK_MODEL_H_

#include <cstdint>

#include "storage/disk.h"
#include "util/statusor.h"

namespace scaddar {

/// Physical parameters of a magnetic disk drive, in the style CM-server
/// papers of the SCADDAR era used to derive per-round service guarantees.
/// Random placement means every block access pays a seek and (on average)
/// half a rotation before the transfer — there is no sequential-access
/// discount, which is exactly the trade-off the RIO line of work accepts
/// for load balance.
struct DiskParameters {
  double rpm = 10000.0;               // Spindle speed.
  double avg_seek_ms = 5.0;           // Average random seek.
  double transfer_mb_per_s = 40.0;    // Sustained media transfer rate.
  int64_t capacity_gb = 73;           // Usable capacity.
};

/// A continuous-media service round.
struct RoundParameters {
  double round_seconds = 1.0;         // Playback time of one block.
  int64_t block_kb = 512;             // CM block size.
};

/// Worst-expected service time of one random block access:
/// seek + half a rotation + transfer. Milliseconds.
double BlockServiceTimeMs(const DiskParameters& disk,
                          const RoundParameters& round);

/// How many random block retrievals one disk completes per round — the
/// `bandwidth_blocks_per_round` of the simulation, derived from physics.
/// Fails if even a single block cannot be served within a round.
StatusOr<int64_t> BlocksPerRound(const DiskParameters& disk,
                                 const RoundParameters& round);

/// How many blocks fit on the disk.
int64_t CapacityBlocks(const DiskParameters& disk,
                       const RoundParameters& round);

/// Bundles the above into the simulation's `DiskSpec`.
StatusOr<DiskSpec> MakeDiskSpec(const DiskParameters& disk,
                                const RoundParameters& round);

/// Era-appropriate presets.
///
/// A late-90s drive of the kind the paper's testbed would have used
/// (7200rpm, ~8ms seeks, ~15 MB/s, 18 GB).
DiskParameters VintageDisk();

/// A high-end drive contemporary with the paper (10k rpm, ~5ms, 40 MB/s,
/// 73 GB) — the "newer generation disks with higher bandwidth and more
/// capacity" of Section 1.
DiskParameters Year2001Disk();

/// A modern nearline drive (7200rpm, ~8ms, 250 MB/s, 20 TB): transfer is
/// no longer the bottleneck, seeks are — random placement's cost profile.
DiskParameters ModernDisk();

}  // namespace scaddar

#endif  // SCADDAR_STORAGE_DISK_MODEL_H_
