#ifndef SCADDAR_STORAGE_MEM_BACKEND_H_
#define SCADDAR_STORAGE_MEM_BACKEND_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/storage_backend.h"

namespace scaddar {

/// The in-memory simulation backend: block images live in per-disk byte
/// vectors, ops execute at enqueue time and completions queue until
/// drained. Zero latency, zero syscalls — the reference implementation
/// every real backend must be content-identical to, and the only one the
/// default simulation-only server ever needs.
class MemBackend : public StorageBackend {
 public:
  explicit MemBackend(const BackendOptions& options)
      : StorageBackend(options) {}

  std::string_view name() const override { return "mem"; }

  Status OpenDisk(PhysicalDiskId disk) override;
  Status CloseDisk(PhysicalDiskId disk) override;
  StatusOr<int64_t> EnqueueRead(PhysicalDiskId disk, int64_t slot,
                                std::byte* buf) override;
  StatusOr<int64_t> EnqueueWrite(PhysicalDiskId disk, int64_t slot,
                                 const std::byte* buf) override;
  Status Flush(PhysicalDiskId disk) override;
  Status SubmitAll() override;
  Status DrainCompletions(std::vector<IoCompletion>& out) override;

 private:
  StatusOr<std::vector<std::byte>*> Region(PhysicalDiskId disk);

  std::unordered_map<PhysicalDiskId, std::vector<std::byte>> regions_;
  std::vector<IoCompletion> completed_;
  int64_t next_token_ = 0;
  bool batch_open_ = false;  // Ops enqueued since the last submit.
};

}  // namespace scaddar

#endif  // SCADDAR_STORAGE_MEM_BACKEND_H_
