#ifndef SCADDAR_STORAGE_DISK_H_
#define SCADDAR_STORAGE_DISK_H_

#include <cstdint>

#include "core/types.h"

namespace scaddar {

/// Static properties of one simulated (homogeneous) magnetic disk.
struct DiskSpec {
  /// How many blocks fit on the disk.
  int64_t capacity_blocks = 1'000'000;
  /// How many block retrievals the disk completes per scheduling round
  /// (Section 1's bandwidth; CM schedulers think in blocks per round).
  int64_t bandwidth_blocks_per_round = 8;
};

/// One simulated disk drive. Tracks occupancy and lifetime service counters;
/// the scheduler owns per-round queueing.
class SimDisk {
 public:
  SimDisk(PhysicalDiskId id, const DiskSpec& spec) : id_(id), spec_(spec) {}

  PhysicalDiskId id() const { return id_; }
  const DiskSpec& spec() const { return spec_; }

  int64_t num_blocks() const { return num_blocks_; }
  bool IsFull() const { return num_blocks_ >= spec_.capacity_blocks; }

  /// Adjusts occupancy; underflow/overflow are programmer errors (checked).
  void AddBlocks(int64_t count);
  void RemoveBlocks(int64_t count);

  /// Lifetime counters for the bench reports.
  void RecordServedRequests(int64_t count) { served_requests_ += count; }
  void RecordMigrationTransfers(int64_t count) {
    migration_transfers_ += count;
  }
  /// Injected transient I/O errors observed on this disk (fault harness).
  void RecordTransientError() { ++transient_errors_; }
  int64_t served_requests() const { return served_requests_; }
  int64_t migration_transfers() const { return migration_transfers_; }
  int64_t transient_errors() const { return transient_errors_; }

 private:
  PhysicalDiskId id_;
  DiskSpec spec_;
  int64_t num_blocks_ = 0;
  int64_t served_requests_ = 0;
  int64_t migration_transfers_ = 0;
  int64_t transient_errors_ = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_STORAGE_DISK_H_
