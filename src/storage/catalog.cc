#include "storage/catalog.h"

#include <algorithm>

#include "random/splitmix64.h"
#include "util/intmath.h"

namespace scaddar {

Catalog::Catalog(uint64_t master_seed, PrngKind kind, int bits)
    : master_seed_(master_seed), kind_(kind), bits_(bits) {
  SCADDAR_CHECK(bits >= 1 && bits <= 64);
}

Status Catalog::AddObject(ObjectId id, int64_t num_blocks,
                          int64_t bitrate_weight) {
  if (num_blocks <= 0) {
    return InvalidArgumentError("object must have >= 1 block");
  }
  if (bitrate_weight <= 0) {
    return InvalidArgumentError("bitrate weight must be positive");
  }
  if (objects_.contains(id)) {
    return AlreadyExistsError("object id already in catalog");
  }
  CmObject object;
  object.id = id;
  object.num_blocks = num_blocks;
  object.bitrate_weight = bitrate_weight;
  object.seed_generation = 0;
  objects_[id] = object;
  order_.push_back(id);
  total_blocks_ += num_blocks;
  return OkStatus();
}

Status Catalog::RemoveObject(ObjectId id) {
  const auto it = objects_.find(id);
  if (it == objects_.end()) {
    return NotFoundError("object not in catalog");
  }
  total_blocks_ -= it->second.num_blocks;
  objects_.erase(it);
  order_.erase(std::find(order_.begin(), order_.end(), id));
  return OkStatus();
}

StatusOr<CmObject> Catalog::GetObject(ObjectId id) const {
  const auto it = objects_.find(id);
  if (it == objects_.end()) {
    return NotFoundError("object not in catalog");
  }
  return it->second;
}

StatusOr<uint64_t> Catalog::SeedOf(ObjectId id) const {
  const auto it = objects_.find(id);
  if (it == objects_.end()) {
    return NotFoundError("object not in catalog");
  }
  return MixSeeds(MixSeeds(master_seed_, static_cast<uint64_t>(id)),
                  static_cast<uint64_t>(it->second.seed_generation));
}

StatusOr<std::vector<uint64_t>> Catalog::MaterializeX0(ObjectId id) const {
  SCADDAR_ASSIGN_OR_RETURN(const uint64_t seed, SeedOf(id));
  SCADDAR_ASSIGN_OR_RETURN(
      std::vector<uint64_t> values,
      X0Sequence::MaterializeOnce(kind_, seed, bits_,
                                  objects_.at(id).num_blocks));
#ifndef NDEBUG
  // Everything downstream (placement, snapshots, restores) assumes X0 is a
  // pure function of (kind, seed, bits): re-materializing must be
  // byte-identical.
  SCADDAR_DCHECK(
      X0Sequence::MaterializeOnce(kind_, seed, bits_,
                                  objects_.at(id).num_blocks)
          .value() == values);
#endif
  return values;
}

Status Catalog::SetGeneration(ObjectId id, int64_t generation) {
  if (generation < 0) {
    return InvalidArgumentError("generation must be >= 0");
  }
  const auto it = objects_.find(id);
  if (it == objects_.end()) {
    return NotFoundError("object not in catalog");
  }
  it->second.seed_generation = generation;
  return OkStatus();
}

Status Catalog::BumpGeneration(ObjectId id) {
  const auto it = objects_.find(id);
  if (it == objects_.end()) {
    return NotFoundError("object not in catalog");
  }
  ++it->second.seed_generation;
  return OkStatus();
}

uint64_t Catalog::r0() const { return MaxRandomForBits(bits_); }

}  // namespace scaddar
