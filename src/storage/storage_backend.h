#ifndef SCADDAR_STORAGE_STORAGE_BACKEND_H_
#define SCADDAR_STORAGE_STORAGE_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.h"
#include "util/statusor.h"

namespace scaddar {

/// Opcode of one queued block-image transfer.
enum class IoOp { kRead, kWrite };

/// Injected outcome for one physical transfer, decided by the fault hook
/// *before* the backend executes it. `kEio` completes the op immediately
/// with an I/O error and never touches the medium; `kShort` executes the
/// transfer with roughly half the requested length, so the completion
/// reports fewer bytes than the block image needs — the torn/short-write
/// surface the crash-recovery protocol must survive.
enum class IoFault { kNone, kEio, kShort };

/// Interposition point on the backend's submission path. Installed by the
/// I/O engine and bound to the PR-5 `FaultInjector`, so real-backend runs
/// draw EIO and short-write faults from the same seeded, replayable
/// schedules as the simulation-level hooks.
using IoFaultHook = std::function<IoFault(PhysicalDiskId, IoOp)>;

/// One completed transfer: the token `EnqueueRead`/`EnqueueWrite` returned,
/// plus the outcome. `bytes` is what the medium actually transferred; a
/// short op reports `ok` status but `bytes < block_bytes` — callers decide
/// whether partial data is loss (the engine treats it as such).
struct IoCompletion {
  int64_t token = 0;
  Status status;
  int64_t bytes = 0;
};

/// Lifetime transfer counters (cheap, always on; the bench reads them).
struct IoStats {
  int64_t reads = 0;            // Read completions.
  int64_t writes = 0;           // Write completions.
  int64_t flushes = 0;          // Durability barriers executed.
  int64_t submit_batches = 0;   // Kernel/worker submissions (the batching
                                // win: ops per batch = ops / batches).
  int64_t injected_eio = 0;     // Fault-hook kEio outcomes delivered.
  int64_t injected_short = 0;   // Fault-hook kShort outcomes delivered.
};

/// Construction knobs shared by every backend.
struct BackendOptions {
  /// Bytes per block image. Real backends lay disks out as dense slot
  /// arrays with this stride; with O_DIRECT active it must be a multiple
  /// of the 4 KiB sector alignment (`MakeStorageBackend` enforces this for
  /// the file-backed specs).
  int64_t block_bytes = 4096;

  /// Per-disk submission-queue depth (io_uring ring size; also the
  /// auto-submit high-water mark for the other backends). Clamped to >= 1.
  int queue_depth = 32;

  /// Worker threads for the sync backend's per-disk executors (ignored by
  /// the other backends). 0 = one per hardware core, capped at 8.
  int sync_workers = 0;
};

/// Where the bytes of every block image live. The placement layers above
/// think in `(object, block) -> physical disk`; this seam thinks in
/// `(disk, slot) -> block image` and nothing else. All transfer APIs are
/// *asynchronous and batched*: `Enqueue*` queues work and returns a token,
/// `SubmitAll` pushes every queued op down in one batch per disk, and
/// `DrainCompletions` waits for the in-flight set. Completion order is
/// unspecified; tokens tie completions back to requests.
///
/// Buffers passed to `Enqueue*` must stay valid until the op's completion
/// is drained. Backends may execute eagerly (the in-memory backend), on
/// submit (the sync backend) or truly in flight (io_uring) — callers must
/// not assume any particular overlap, only the token contract.
///
/// Thread safety: none. One owner (the `BlockIoEngine`) drives a backend;
/// the serving runtime's parallelism stays above this layer.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  virtual std::string_view name() const = 0;
  int64_t block_bytes() const { return options_.block_bytes; }
  int queue_depth() const { return options_.queue_depth; }

  /// Creates (or reopens) the backing region for `disk`. Idempotent.
  virtual Status OpenDisk(PhysicalDiskId disk) = 0;

  /// Releases the disk's runtime resources (fds, rings). The backing bytes
  /// survive for file-backed backends — `OpenDisk` reattaches them, which
  /// is how a crash restart reopens the farm.
  virtual Status CloseDisk(PhysicalDiskId disk) = 0;

  /// Queues a block-image read from `(disk, slot)` into `buf`
  /// (`block_bytes()` long). May auto-submit when the disk's queue fills.
  virtual StatusOr<int64_t> EnqueueRead(PhysicalDiskId disk, int64_t slot,
                                        std::byte* buf) = 0;

  /// Queues a block-image write of `buf` to `(disk, slot)`, growing the
  /// region as needed. Same batching contract as `EnqueueRead`.
  virtual StatusOr<int64_t> EnqueueWrite(PhysicalDiskId disk, int64_t slot,
                                         const std::byte* buf) = 0;

  /// Durability barrier: everything *completed* on `disk` before the call
  /// is durable when it returns (fdatasync semantics). Callers drain
  /// completions first; flushing with ops in flight is a checked bug.
  virtual Status Flush(PhysicalDiskId disk) = 0;

  /// Pushes every queued op toward the medium — one batched submission per
  /// disk — without waiting for completions.
  virtual Status SubmitAll() = 0;

  /// Submits anything still queued, waits for every in-flight op and
  /// appends their completions to `out`.
  virtual Status DrainCompletions(std::vector<IoCompletion>& out) = 0;

  /// Registers a contiguous arena of `count` block-sized buffers starting
  /// at `base`. Backends that can pin memory (io_uring fixed buffers) use
  /// it to skip per-op mapping; others ignore it. Call before the arena is
  /// first used; re-registration replaces the previous arena.
  virtual Status RegisterBufferArena(std::byte* base, int64_t count) {
    (void)base;
    (void)count;
    return OkStatus();
  }

  /// True when the backend bypasses the page cache (O_DIRECT took).
  virtual bool direct_io() const { return false; }

  void set_fault_hook(IoFaultHook hook) { fault_hook_ = std::move(hook); }
  const IoStats& stats() const { return stats_; }

 protected:
  explicit StorageBackend(const BackendOptions& options) : options_(options) {
    if (options_.queue_depth < 1) {
      options_.queue_depth = 1;
    }
  }

  /// Consults the fault hook for one op; counts what it injects.
  IoFault NextFault(PhysicalDiskId disk, IoOp op) {
    if (!fault_hook_) {
      return IoFault::kNone;
    }
    const IoFault fault = fault_hook_(disk, op);
    if (fault == IoFault::kEio) {
      ++stats_.injected_eio;
    } else if (fault == IoFault::kShort) {
      ++stats_.injected_short;
    }
    return fault;
  }

  BackendOptions options_;
  IoFaultHook fault_hook_;
  IoStats stats_;
};

/// True when this kernel/container accepts `io_uring_setup` (the syscall
/// may be compiled out or seccomp-filtered; probed once, cached).
bool UringAvailable();

/// Creates `path` and any missing parents (mkdir -p semantics). Best
/// effort: callers surface real failures when the files inside refuse to
/// open. Shard-suffixed backend dirs ("file:<dir>/shard3") rely on this.
void MakeDirectories(std::string_view path);

/// Builds a backend from its config-string form:
///
///   "mem"          in-memory byte images (the simulation backend)
///   "file:<dir>"   one file per disk under <dir>, pread/pwrite on
///                  per-disk workers (the portable sync backend)
///   "uring:<dir>"  one file per disk under <dir>, one io_uring ring per
///                  disk with `options.queue_depth` entries
///
/// The file-backed specs open with O_DIRECT and fall back to buffered I/O
/// where the filesystem refuses it (tmpfs). "uring:" falls back to the
/// sync backend when `UringAvailable()` is false, so scenarios stay
/// portable across kernels.
StatusOr<std::unique_ptr<StorageBackend>> MakeStorageBackend(
    std::string_view spec, const BackendOptions& options);

}  // namespace scaddar

#endif  // SCADDAR_STORAGE_STORAGE_BACKEND_H_
