#ifndef SCADDAR_STORAGE_BLOCK_STORE_H_
#define SCADDAR_STORAGE_BLOCK_STORE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/redistribution.h"
#include "core/types.h"
#include "placement/policy.h"
#include "storage/disk_array.h"
#include "util/epoch.h"
#include "util/statusor.h"

namespace scaddar {

class BlockIoEngine;

/// The *materialized* truth of where every block physically resides. The
/// placement policy computes where blocks *should* be; the block store
/// records where they *are*. During an online scaling operation the two
/// disagree until the migration finishes — reads must go through the store,
/// which is exactly how the paper's server keeps serving during
/// reorganization.
///
/// If constructed with a `DiskArray`, occupancy counters are kept in sync.
class BlockStore {
 public:
  explicit BlockStore(DiskArray* disks = nullptr) : disks_(disks) {}

  /// Attaches (or detaches, with null) the real-I/O engine. With an engine
  /// attached every mutation forwards to it *before* mutating the
  /// bookkeeping — block images move on the backing medium in lockstep
  /// with the location map, and an engine failure leaves the store
  /// untouched. Without one the store is the pure simulation it always was.
  void AttachIoEngine(BlockIoEngine* io) { io_ = io; }
  BlockIoEngine* io_engine() const { return io_; }

  /// Materializes an object whose block `i` lives on `locations[i]`.
  Status PlaceObject(ObjectId id, const std::vector<PhysicalDiskId>& locations);

  /// Deletes an object's blocks.
  Status DropObject(ObjectId id);

  /// Where block `ref` currently resides.
  StatusOr<PhysicalDiskId> LocationOf(BlockRef ref) const;

  /// Row view of an object's materialized locations: `row[i]` is block `i`'s
  /// physical disk. The span stays valid until the object is dropped;
  /// entries change in place as moves apply (batch consumers — cursors,
  /// migration rounds — pay one hash lookup per object instead of per
  /// block).
  StatusOr<std::span<const PhysicalDiskId>> LocationsOf(ObjectId id) const;

  /// Monotonic counter bumped by every successful mutation (`PlaceObject`,
  /// `DropObject`, `ApplyMove`). Holders of cached location windows
  /// (`LocationCursor`) detect staleness with one integer compare, the same
  /// contract as `OpLog::revision()` on the placement side.
  ///
  /// Concurrency: reads are acquire-loads and bumps release stores
  /// (`RevisionCounter`) — a sharded serving worker that observes revision
  /// `r` also observes the row contents that mutation wrote. Mutations stay
  /// single-writer: the runtime runs migration only between rounds, while
  /// no shard worker reads.
  int64_t mutation_revision() const { return mutation_revision_.Load(); }

  /// Monotonic counter bumped only by mutations touching `id`'s row (0 for
  /// unknown objects). Lets a cached window survive other objects' moves:
  /// a cursor that sees the global revision advance re-checks just its own
  /// row before paying a refill. Same acquire/release contract as
  /// `mutation_revision()`; the *map* lookup is safe under concurrent
  /// readers because only the quiesced coordinator inserts rows.
  int64_t RowRevision(ObjectId id) const;

  /// Executes one relocation; fails (without side effects) if the block is
  /// not currently on `move.from_physical`.
  Status ApplyMove(const BlockMove& move);

  // --- Staged copies (the journaled move protocol's middle state). -------
  // A staged copy models the durable bytes a migration has written to the
  // target disk *before* the location flip makes them authoritative: the
  // block is still served from its current disk, but the target's occupancy
  // is charged. A crash between stage and commit leaves the staged copy
  // behind for `MoveJournal::Recover` to roll forward or release.

  /// Charges a durable copy of `ref`'s bytes to `to`. Fails if the block is
  /// unknown, already on `to`, or already staged somewhere.
  Status StageCopy(BlockRef ref, PhysicalDiskId to);

  /// Promotes the staged copy to the authoritative location: the block now
  /// lives on `to` and `from`'s occupancy is released. Fails (without side
  /// effects) unless the block is on `from` and staged exactly to `to`.
  Status CommitStagedMove(BlockRef ref, PhysicalDiskId from,
                          PhysicalDiskId to);

  /// Releases a staged copy without flipping the location (crash recovery
  /// rollback of a torn or orphaned copy).
  Status AbortStagedCopy(BlockRef ref);

  /// True when `ref`'s staged bytes are intact on the backing medium (reads
  /// them back through the attached engine). Trivially true without an
  /// engine — simulated staged copies cannot tear. NotFound when nothing is
  /// staged. `MoveJournal::Recover` gates roll-forward on this.
  StatusOr<bool> ValidateStagedImage(BlockRef ref) const;

  /// Where `ref` is currently staged to, or NotFound.
  StatusOr<PhysicalDiskId> StagedTarget(BlockRef ref) const;

  /// Every outstanding staged copy in deterministic (object, block) order —
  /// the recovery sweep enumerates these to release orphans.
  std::vector<std::pair<BlockRef, PhysicalDiskId>> StagedCopies() const;

  /// Outstanding staged copies (0 whenever no move is mid-protocol).
  int64_t staged_blocks() const { return staged_count_; }

  /// Executes a whole plan; stops at the first failing move.
  Status ApplyPlan(const MovePlan& plan);

  /// Verifies that every stored block is exactly where `policy.Locate` says
  /// it should be — the RF()/AF() agreement check. Also fails while staged
  /// copies are outstanding: a converged store has no move mid-protocol.
  Status VerifyAgainstPolicy(const PlacementPolicy& policy) const;

  int64_t total_blocks() const { return total_blocks_; }

  /// Blocks per physical disk (only disks that hold blocks appear).
  const std::unordered_map<PhysicalDiskId, int64_t>& per_disk_counts() const {
    return per_disk_counts_;
  }

  /// Blocks currently on `disk`.
  int64_t CountOn(PhysicalDiskId disk) const;

 private:
  void AdjustDisk(PhysicalDiskId disk, int64_t delta);

  DiskArray* disks_;  // Not owned; may be null.
  BlockIoEngine* io_ = nullptr;  // Not owned; may be null.
  std::unordered_map<ObjectId, std::vector<PhysicalDiskId>> locations_;
  std::unordered_map<ObjectId, RevisionCounter> row_revisions_;
  std::unordered_map<PhysicalDiskId, int64_t> per_disk_counts_;
  // staged_[object][block] = disk holding the not-yet-committed copy.
  std::unordered_map<ObjectId, std::unordered_map<BlockIndex, PhysicalDiskId>>
      staged_;
  int64_t staged_count_ = 0;
  int64_t total_blocks_ = 0;
  RevisionCounter mutation_revision_;
};

}  // namespace scaddar

#endif  // SCADDAR_STORAGE_BLOCK_STORE_H_
