#include "storage/block_store.h"

namespace scaddar {

Status BlockStore::PlaceObject(ObjectId id,
                               const std::vector<PhysicalDiskId>& locations) {
  if (locations.empty()) {
    return InvalidArgumentError("object must have >= 1 block");
  }
  if (locations_.contains(id)) {
    return AlreadyExistsError("object already materialized");
  }
  locations_[id] = locations;
  total_blocks_ += static_cast<int64_t>(locations.size());
  for (const PhysicalDiskId disk : locations) {
    AdjustDisk(disk, 1);
  }
  ++mutation_revision_;
  ++row_revisions_[id];
  return OkStatus();
}

Status BlockStore::DropObject(ObjectId id) {
  const auto it = locations_.find(id);
  if (it == locations_.end()) {
    return NotFoundError("object not materialized");
  }
  for (const PhysicalDiskId disk : it->second) {
    AdjustDisk(disk, -1);
  }
  total_blocks_ -= static_cast<int64_t>(it->second.size());
  locations_.erase(it);
  ++mutation_revision_;
  ++row_revisions_[id];
  return OkStatus();
}

StatusOr<std::span<const PhysicalDiskId>> BlockStore::LocationsOf(
    ObjectId id) const {
  const auto it = locations_.find(id);
  if (it == locations_.end()) {
    return NotFoundError("object not materialized");
  }
  return std::span<const PhysicalDiskId>(it->second);
}

int64_t BlockStore::RowRevision(ObjectId id) const {
  const auto it = row_revisions_.find(id);
  return it == row_revisions_.end() ? 0 : it->second;
}

StatusOr<PhysicalDiskId> BlockStore::LocationOf(BlockRef ref) const {
  const auto it = locations_.find(ref.object);
  if (it == locations_.end()) {
    return NotFoundError("object not materialized");
  }
  if (ref.block < 0 ||
      ref.block >= static_cast<BlockIndex>(it->second.size())) {
    return OutOfRangeError("block index out of range");
  }
  return it->second[static_cast<size_t>(ref.block)];
}

Status BlockStore::ApplyMove(const BlockMove& move) {
  const auto it = locations_.find(move.block.object);
  if (it == locations_.end()) {
    return NotFoundError("object not materialized");
  }
  if (move.block.block < 0 ||
      move.block.block >= static_cast<BlockIndex>(it->second.size())) {
    return OutOfRangeError("block index out of range");
  }
  PhysicalDiskId& location =
      it->second[static_cast<size_t>(move.block.block)];
  if (location != move.from_physical) {
    return FailedPreconditionError("block is not on the expected source disk");
  }
  location = move.to_physical;
  AdjustDisk(move.from_physical, -1);
  AdjustDisk(move.to_physical, 1);
  ++mutation_revision_;
  ++row_revisions_[move.block.object];
  return OkStatus();
}

Status BlockStore::ApplyPlan(const MovePlan& plan) {
  for (const BlockMove& move : plan.moves()) {
    SCADDAR_RETURN_IF_ERROR(ApplyMove(move));
  }
  return OkStatus();
}

Status BlockStore::VerifyAgainstPolicy(const PlacementPolicy& policy) const {
  for (const auto& [id, locations] : locations_) {
    for (size_t i = 0; i < locations.size(); ++i) {
      const PhysicalDiskId expected =
          policy.Locate(id, static_cast<BlockIndex>(i));
      if (expected != locations[i]) {
        return InternalError("materialized location diverges from AF()");
      }
    }
  }
  return OkStatus();
}

int64_t BlockStore::CountOn(PhysicalDiskId disk) const {
  const auto it = per_disk_counts_.find(disk);
  return it == per_disk_counts_.end() ? 0 : it->second;
}

void BlockStore::AdjustDisk(PhysicalDiskId disk, int64_t delta) {
  int64_t& count = per_disk_counts_[disk];
  count += delta;
  SCADDAR_CHECK(count >= 0);
  if (count == 0) {
    per_disk_counts_.erase(disk);
  }
  if (disks_ != nullptr) {
    StatusOr<SimDisk*> sim = disks_->GetDisk(disk);
    if (sim.ok()) {
      if (delta > 0) {
        (*sim)->AddBlocks(delta);
      } else {
        (*sim)->RemoveBlocks(-delta);
      }
    }
  }
}

}  // namespace scaddar
