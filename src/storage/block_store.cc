#include "storage/block_store.h"

#include <algorithm>

#include "storage/block_io.h"

namespace scaddar {

Status BlockStore::PlaceObject(ObjectId id,
                               const std::vector<PhysicalDiskId>& locations) {
  if (locations.empty()) {
    return InvalidArgumentError("object must have >= 1 block");
  }
  if (locations_.contains(id)) {
    return AlreadyExistsError("object already materialized");
  }
  if (io_ != nullptr) {
    SCADDAR_RETURN_IF_ERROR(io_->PlaceObject(
        id, std::span<const PhysicalDiskId>(locations)));
  }
  locations_[id] = locations;
  total_blocks_ += static_cast<int64_t>(locations.size());
  for (const PhysicalDiskId disk : locations) {
    AdjustDisk(disk, 1);
  }
  mutation_revision_.Bump();
  row_revisions_[id].Bump();
  return OkStatus();
}

Status BlockStore::DropObject(ObjectId id) {
  const auto it = locations_.find(id);
  if (it == locations_.end()) {
    return NotFoundError("object not materialized");
  }
  if (io_ != nullptr) {
    SCADDAR_RETURN_IF_ERROR(io_->DropObject(id));
  }
  for (const PhysicalDiskId disk : it->second) {
    AdjustDisk(disk, -1);
  }
  // Staged copies of a dropped object are garbage: release their space.
  const auto staged = staged_.find(id);
  if (staged != staged_.end()) {
    for (const auto& [block, disk] : staged->second) {
      AdjustDisk(disk, -1);
      --staged_count_;
    }
    staged_.erase(staged);
  }
  total_blocks_ -= static_cast<int64_t>(it->second.size());
  locations_.erase(it);
  mutation_revision_.Bump();
  row_revisions_[id].Bump();
  return OkStatus();
}

StatusOr<std::span<const PhysicalDiskId>> BlockStore::LocationsOf(
    ObjectId id) const {
  const auto it = locations_.find(id);
  if (it == locations_.end()) {
    return NotFoundError("object not materialized");
  }
  return std::span<const PhysicalDiskId>(it->second);
}

int64_t BlockStore::RowRevision(ObjectId id) const {
  const auto it = row_revisions_.find(id);
  return it == row_revisions_.end() ? 0 : it->second.Load();
}

StatusOr<PhysicalDiskId> BlockStore::LocationOf(BlockRef ref) const {
  const auto it = locations_.find(ref.object);
  if (it == locations_.end()) {
    return NotFoundError("object not materialized");
  }
  if (ref.block < 0 ||
      ref.block >= static_cast<BlockIndex>(it->second.size())) {
    return OutOfRangeError("block index out of range");
  }
  return it->second[static_cast<size_t>(ref.block)];
}

Status BlockStore::ApplyMove(const BlockMove& move) {
  const auto it = locations_.find(move.block.object);
  if (it == locations_.end()) {
    return NotFoundError("object not materialized");
  }
  if (move.block.block < 0 ||
      move.block.block >= static_cast<BlockIndex>(it->second.size())) {
    return OutOfRangeError("block index out of range");
  }
  PhysicalDiskId& location =
      it->second[static_cast<size_t>(move.block.block)];
  if (location != move.from_physical) {
    return FailedPreconditionError("block is not on the expected source disk");
  }
  if (io_ != nullptr) {
    SCADDAR_RETURN_IF_ERROR(
        io_->ApplyMove(move.block, move.from_physical, move.to_physical));
  }
  location = move.to_physical;
  AdjustDisk(move.from_physical, -1);
  AdjustDisk(move.to_physical, 1);
  mutation_revision_.Bump();
  row_revisions_[move.block.object].Bump();
  return OkStatus();
}

Status BlockStore::StageCopy(BlockRef ref, PhysicalDiskId to) {
  const auto it = locations_.find(ref.object);
  if (it == locations_.end()) {
    return NotFoundError("object not materialized");
  }
  if (ref.block < 0 ||
      ref.block >= static_cast<BlockIndex>(it->second.size())) {
    return OutOfRangeError("block index out of range");
  }
  const PhysicalDiskId from = it->second[static_cast<size_t>(ref.block)];
  if (from == to) {
    return InvalidArgumentError("block already resides on the target disk");
  }
  auto& object_staged = staged_[ref.object];
  if (object_staged.contains(ref.block)) {
    return FailedPreconditionError("block already has a staged copy");
  }
  if (io_ != nullptr) {
    SCADDAR_RETURN_IF_ERROR(io_->StageCopy(ref, from, to));
  }
  object_staged.emplace(ref.block, to);
  AdjustDisk(to, 1);
  ++staged_count_;
  mutation_revision_.Bump();
  return OkStatus();
}

Status BlockStore::CommitStagedMove(BlockRef ref, PhysicalDiskId from,
                                    PhysicalDiskId to) {
  const auto it = locations_.find(ref.object);
  if (it == locations_.end()) {
    return NotFoundError("object not materialized");
  }
  if (ref.block < 0 ||
      ref.block >= static_cast<BlockIndex>(it->second.size())) {
    return OutOfRangeError("block index out of range");
  }
  const auto staged = staged_.find(ref.object);
  if (staged == staged_.end() || !staged->second.contains(ref.block)) {
    return FailedPreconditionError("block has no staged copy");
  }
  if (staged->second.at(ref.block) != to) {
    return FailedPreconditionError("staged copy is on a different disk");
  }
  PhysicalDiskId& location = it->second[static_cast<size_t>(ref.block)];
  if (location != from) {
    return FailedPreconditionError("block is not on the expected source disk");
  }
  if (io_ != nullptr) {
    SCADDAR_RETURN_IF_ERROR(io_->CommitStaged(ref, from, to));
  }
  // The staged copy becomes the authoritative one (no occupancy change on
  // `to`); the source copy is released.
  location = to;
  staged->second.erase(ref.block);
  if (staged->second.empty()) {
    staged_.erase(staged);
  }
  --staged_count_;
  AdjustDisk(from, -1);
  mutation_revision_.Bump();
  row_revisions_[ref.object].Bump();
  return OkStatus();
}

Status BlockStore::AbortStagedCopy(BlockRef ref) {
  const auto staged = staged_.find(ref.object);
  if (staged == staged_.end()) {
    return NotFoundError("block has no staged copy");
  }
  const auto entry = staged->second.find(ref.block);
  if (entry == staged->second.end()) {
    return NotFoundError("block has no staged copy");
  }
  if (io_ != nullptr) {
    SCADDAR_RETURN_IF_ERROR(io_->AbortStaged(ref));
  }
  AdjustDisk(entry->second, -1);
  staged->second.erase(entry);
  if (staged->second.empty()) {
    staged_.erase(staged);
  }
  --staged_count_;
  mutation_revision_.Bump();
  return OkStatus();
}

StatusOr<bool> BlockStore::ValidateStagedImage(BlockRef ref) const {
  const auto staged = staged_.find(ref.object);
  if (staged == staged_.end() || !staged->second.contains(ref.block)) {
    return NotFoundError("block has no staged copy");
  }
  if (io_ == nullptr) {
    return true;  // Simulated staged copies cannot tear.
  }
  return io_->ValidateStagedImage(ref);
}

StatusOr<PhysicalDiskId> BlockStore::StagedTarget(BlockRef ref) const {
  const auto staged = staged_.find(ref.object);
  if (staged == staged_.end()) {
    return NotFoundError("block has no staged copy");
  }
  const auto entry = staged->second.find(ref.block);
  if (entry == staged->second.end()) {
    return NotFoundError("block has no staged copy");
  }
  return entry->second;
}

std::vector<std::pair<BlockRef, PhysicalDiskId>> BlockStore::StagedCopies()
    const {
  std::vector<std::pair<BlockRef, PhysicalDiskId>> out;
  out.reserve(static_cast<size_t>(staged_count_));
  for (const auto& [object, blocks] : staged_) {
    for (const auto& [block, disk] : blocks) {
      out.emplace_back(BlockRef{object, block}, disk);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.first.object != b.first.object
               ? a.first.object < b.first.object
               : a.first.block < b.first.block;
  });
  return out;
}

Status BlockStore::ApplyPlan(const MovePlan& plan) {
  for (const BlockMove& move : plan.moves()) {
    SCADDAR_RETURN_IF_ERROR(ApplyMove(move));
  }
  return OkStatus();
}

Status BlockStore::VerifyAgainstPolicy(const PlacementPolicy& policy) const {
  if (staged_count_ > 0) {
    return InternalError("staged copies outstanding; a move is mid-protocol");
  }
  for (const auto& [id, locations] : locations_) {
    for (size_t i = 0; i < locations.size(); ++i) {
      const PhysicalDiskId expected =
          policy.Locate(id, static_cast<BlockIndex>(i));
      if (expected != locations[i]) {
        return InternalError("materialized location diverges from AF()");
      }
    }
  }
  return OkStatus();
}

int64_t BlockStore::CountOn(PhysicalDiskId disk) const {
  const auto it = per_disk_counts_.find(disk);
  return it == per_disk_counts_.end() ? 0 : it->second;
}

void BlockStore::AdjustDisk(PhysicalDiskId disk, int64_t delta) {
  int64_t& count = per_disk_counts_[disk];
  count += delta;
  SCADDAR_CHECK(count >= 0);
  if (count == 0) {
    per_disk_counts_.erase(disk);
  }
  if (disks_ != nullptr) {
    StatusOr<SimDisk*> sim = disks_->GetDisk(disk);
    if (sim.ok()) {
      if (delta > 0) {
        (*sim)->AddBlocks(delta);
      } else {
        (*sim)->RemoveBlocks(-delta);
      }
    }
  }
}

}  // namespace scaddar
