#ifndef SCADDAR_STORAGE_OBJECT_H_
#define SCADDAR_STORAGE_OBJECT_H_

#include <cstdint>

#include "core/types.h"

namespace scaddar {

/// A continuous media object: a movie/audio stream split into fixed-size
/// blocks (Section 1). `seed_generation` supports the paper's full
/// redistribution fallback: when the Lemma 4.3 bound trips, the generation
/// is bumped, which deterministically derives a fresh seed and an empty op
/// log for the object.
struct CmObject {
  ObjectId id = 0;
  int64_t num_blocks = 0;
  /// Playback consumes one block per `blocks_per_round` rounds == 1 here;
  /// kept as data for heterogeneous bitrates in the workload generator.
  int64_t bitrate_weight = 1;
  int64_t seed_generation = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_STORAGE_OBJECT_H_
