#ifndef SCADDAR_STORAGE_FILE_BACKEND_H_
#define SCADDAR_STORAGE_FILE_BACKEND_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/storage_backend.h"
#include "util/thread_pool.h"

namespace scaddar {

/// The portable real-I/O backend: one regular file per disk under a caller
/// directory, block images at `slot * block_bytes`, pread/pwrite executed
/// by per-disk worker tasks on a `ThreadPool`. Each disk's queue drains
/// serially (queue depth 1 at the medium — the baseline the io_uring
/// backend's ring depth is measured against); disks run concurrently,
/// which is the parallelism a real multi-spindle farm has anyway.
///
/// Files open O_DIRECT when the filesystem allows it and silently fall
/// back to buffered I/O where it doesn't (tmpfs); `direct_io()` reports
/// which mode took so benches can label their numbers.
class SyncFileBackend : public StorageBackend {
 public:
  SyncFileBackend(std::string directory, const BackendOptions& options);
  ~SyncFileBackend() override;

  std::string_view name() const override { return "file"; }

  Status OpenDisk(PhysicalDiskId disk) override;
  Status CloseDisk(PhysicalDiskId disk) override;
  StatusOr<int64_t> EnqueueRead(PhysicalDiskId disk, int64_t slot,
                                std::byte* buf) override;
  StatusOr<int64_t> EnqueueWrite(PhysicalDiskId disk, int64_t slot,
                                 const std::byte* buf) override;
  Status Flush(PhysicalDiskId disk) override;
  Status SubmitAll() override;
  Status DrainCompletions(std::vector<IoCompletion>& out) override;
  bool direct_io() const override { return direct_; }

  const std::string& directory() const { return directory_; }

 private:
  struct PendingOp {
    IoOp op = IoOp::kRead;
    int64_t token = 0;
    int64_t offset = 0;
    std::byte* buf = nullptr;          // Read destination.
    const std::byte* src = nullptr;    // Write source.
    IoFault fault = IoFault::kNone;
  };

  struct DiskState {
    int fd = -1;
    std::vector<PendingOp> queued;     // Not yet dispatched.
    bool worker_busy = false;          // A pool task owns this disk's queue.
  };

  StatusOr<DiskState*> State(PhysicalDiskId disk);
  /// Executes one op against `fd`; returns its completion.
  IoCompletion Execute(int fd, const PendingOp& op);
  /// Dispatches `disk`'s queued ops to a pool worker (one batch).
  void DispatchLocked(PhysicalDiskId disk, DiskState& state);

  std::string directory_;
  bool direct_ = false;
  std::unique_ptr<ThreadPool> pool_;
  int64_t next_token_ = 0;

  // Everything below `mu_` is shared with the worker tasks.
  std::mutex mu_;
  std::condition_variable idle_;
  std::unordered_map<PhysicalDiskId, DiskState> disks_;
  std::vector<IoCompletion> completed_;
  int64_t in_flight_batches_ = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_STORAGE_FILE_BACKEND_H_
