#ifndef SCADDAR_STORAGE_BLOCK_IO_H_
#define SCADDAR_STORAGE_BLOCK_IO_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/types.h"
#include "storage/storage_backend.h"
#include "util/statusor.h"

namespace scaddar {

/// Engine-level transfer outcomes (the backend's `IoStats` counts raw ops;
/// these count what the server cares about).
struct EngineIoStats {
  int64_t serve_reads = 0;     // Serve reads that came back intact.
  int64_t serve_errors = 0;    // Serve reads lost to EIO/short/corruption.
  int64_t copy_failures = 0;   // Staged copies that failed and were reported
                               // back to the migration executor.
  int64_t blocks_placed = 0;   // Block images written by PlaceObject.
  int64_t moves_applied = 0;   // Synchronous ApplyMove copies.
};

/// Bridges the placement layers' `(object, block) -> disk` world to a
/// `StorageBackend`'s `(disk, slot) -> bytes` world. The engine owns the
/// authoritative slot map (mirroring `BlockStore`'s location map one level
/// down), generates deterministic block images so any byte on any medium
/// can be re-derived and verified from `(content_seed, object, block)`
/// alone, and drives all I/O through the backend's batched submit/drain
/// contract:
///
///  - Serving: `EnqueueServeRead` per delivered block, `FinishServeRound`
///    once per round — a whole round's reads go down in one submission per
///    disk, overlapping with the scheduler's resolve work.
///  - Migration: `StageCopy` just allocates the staged slot (metadata);
///    `FinishMigrationRound` performs every staged copy of the round —
///    batched source reads, then batched target writes, then one flush per
///    touched disk — and reports which copies failed so the executor can
///    abort and re-queue them. Staged bytes are therefore *volatile* until
///    `FinishMigrationRound` returns, which is exactly why
///    `MoveJournal::Recover` validates staged images before rolling a move
///    forward.
///
/// Thread safety: none; the engine runs on the coordinator thread between
/// the scheduler's parallel phases, like every other mutation.
class BlockIoEngine {
 public:
  struct Options {
    std::string spec = "mem";    // MakeStorageBackend spec string.
    int64_t block_bytes = 4096;
    int queue_depth = 32;
    int sync_workers = 0;        // Sync backend worker threads (0 = auto).
    int arena_blocks = 256;      // Serve-read buffer arena (registered with
                                 // the backend when it can pin memory).
    uint64_t content_seed = 0x5cadda;
  };

  static StatusOr<std::unique_ptr<BlockIoEngine>> Create(
      const Options& options);
  ~BlockIoEngine();

  BlockIoEngine(const BlockIoEngine&) = delete;
  BlockIoEngine& operator=(const BlockIoEngine&) = delete;

  /// Writes the canonical image of `ref` — 16-byte header (tagged object,
  /// block) plus a splitmix64 payload keyed on (seed, object, block) — into
  /// `out[0, len)`.
  static void FillImage(BlockRef ref, uint64_t seed, std::byte* out,
                        int64_t len);

  /// True when `data[0, len)` is exactly the canonical image of `ref`.
  static bool CheckImage(BlockRef ref, uint64_t seed, const std::byte* data,
                         int64_t len);

  StorageBackend& backend() { return *backend_; }
  const StorageBackend& backend() const { return *backend_; }
  const EngineIoStats& stats() const { return stats_; }
  uint64_t content_seed() const { return options_.content_seed; }
  int64_t block_bytes() const { return options_.block_bytes; }

  // --- Mutations (mirrors of the BlockStore operations). -----------------

  /// Writes block `i`'s image to a fresh slot on `locations[i]` for every
  /// block; batched with intermediate drains, synchronous overall.
  Status PlaceObject(ObjectId id, std::span<const PhysicalDiskId> locations);

  /// Releases every slot (authoritative and staged) the object holds.
  Status DropObject(ObjectId id);

  /// Synchronous relocation: read + verify the image, write it to a fresh
  /// slot on `to`, flush, flip. The non-journaled path (plans, tests).
  Status ApplyMove(BlockRef ref, PhysicalDiskId from, PhysicalDiskId to);

  /// Allocates the staged slot on `to` and queues the copy for
  /// `FinishMigrationRound`. No bytes move yet.
  Status StageCopy(BlockRef ref, PhysicalDiskId from, PhysicalDiskId to);

  /// Promotes the staged slot to authoritative and frees the source slot.
  Status CommitStaged(BlockRef ref, PhysicalDiskId from, PhysicalDiskId to);

  /// Frees the staged slot (recovery rollback / failed copy).
  Status AbortStaged(BlockRef ref);

  /// Reads the staged copy of `ref` back and verifies it against the
  /// canonical image: false for torn, short or never-landed bytes. The
  /// recovery gate for rolling a kCopied journal entry forward.
  StatusOr<bool> ValidateStagedImage(BlockRef ref);

  // --- Round hooks. ------------------------------------------------------

  /// Queues the serve read for one delivered block into the registered
  /// arena. Auto-drains when the arena fills mid-round.
  Status EnqueueServeRead(BlockRef ref, PhysicalDiskId disk);

  /// Submits and drains the round's serve reads (one submission per disk),
  /// verifying each returned image header.
  Status FinishServeRound();

  /// Executes every copy staged since the last call: batched source reads,
  /// batched target writes (one submission per disk each), one flush per
  /// touched target disk. Appends the refs whose copy failed (injected
  /// EIO, short write, corrupt source) to `failed` — their staged slots
  /// still exist and the caller is expected to abort them.
  Status FinishMigrationRound(std::vector<BlockRef>* failed);

  // --- Introspection & recovery. -----------------------------------------

  /// Synchronous read of `ref`'s authoritative image (tests, tooling).
  StatusOr<std::vector<std::byte>> ReadImage(BlockRef ref);

  int64_t pending_copies() const {
    return static_cast<int64_t>(pending_copies_.size());
  }

  /// Text form of the slot layout ("layout-v1"); the durable metadata a
  /// real deployment would keep next to the journal.
  std::string SerializeLayout() const;
  Status RestoreLayout(std::string_view text);

  /// What a process crash does to the engine: queued-but-unexecuted staged
  /// copies vanish (their bytes never reached the medium), the slot layout
  /// round-trips through its serialized form, and every disk is closed and
  /// reopened through the backend.
  Status SimulateCrashRestart();

 private:
  struct SlotLoc {
    PhysicalDiskId disk = 0;
    int64_t slot = 0;
  };

  struct DiskLayout {
    int64_t next_slot = 0;
    std::vector<int64_t> free_slots;
  };

  struct FreeDeleter {
    void operator()(std::byte* p) const;
  };
  using AlignedPtr = std::unique_ptr<std::byte[], FreeDeleter>;

  struct PendingCopy {
    BlockRef ref;
    SlotLoc from;
    SlotLoc to;
    AlignedPtr buf;
    bool failed = false;
  };

  /// What one outstanding backend token means to the engine.
  struct PendingTag {
    enum class Kind { kServeRead, kCopyRead, kCopyWrite, kPlaceWrite, kSync };
    Kind kind = Kind::kSync;
    BlockRef ref;
    size_t index = 0;  // Arena buffer / pending-copy index.
  };

  explicit BlockIoEngine(const Options& options);
  Status Init();

  AlignedPtr AllocBlock() const;
  Status EnsureDisk(PhysicalDiskId disk);
  int64_t AllocSlot(PhysicalDiskId disk);
  void FreeSlot(SlotLoc loc);
  StatusOr<SlotLoc> AuthoritativeLoc(BlockRef ref) const;

  /// Drains the backend and routes every completion by its tag.
  Status DrainAndDispatch();

  /// Enqueue + submit + drain one op; returns ok(full transfer) or error.
  StatusOr<bool> SyncRead(SlotLoc loc, std::byte* buf);
  StatusOr<bool> SyncWrite(SlotLoc loc, const std::byte* buf);

  Options options_;
  std::unique_ptr<StorageBackend> backend_;
  AlignedPtr arena_;    // arena_blocks_ * block_bytes, registered.
  AlignedPtr scratch_;  // One block, for the synchronous helpers.

  std::unordered_map<ObjectId, std::vector<SlotLoc>> objects_;
  std::unordered_map<ObjectId, std::unordered_map<BlockIndex, SlotLoc>>
      staged_;
  std::unordered_map<PhysicalDiskId, DiskLayout> layouts_;
  std::unordered_set<PhysicalDiskId> open_disks_;

  std::vector<PendingCopy> pending_copies_;
  std::unordered_map<int64_t, PendingTag> pending_;  // token -> meaning
  std::unordered_map<int64_t, IoCompletion> sync_results_;
  size_t serve_in_flight_ = 0;
  int64_t place_write_failures_ = 0;

  EngineIoStats stats_;
};

}  // namespace scaddar

#endif  // SCADDAR_STORAGE_BLOCK_IO_H_
