#include "storage/storage_backend.h"

#include <sys/stat.h>

#include "storage/file_backend.h"
#include "storage/mem_backend.h"
#include "storage/uring_backend.h"

namespace scaddar {

void MakeDirectories(std::string_view path) {
  std::string prefix;
  prefix.reserve(path.size());
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (!prefix.empty() && prefix != "/") {
        ::mkdir(prefix.c_str(), 0755);
      }
    }
    if (i < path.size()) {
      prefix += path[i];
    }
  }
}

namespace {

constexpr std::string_view kFilePrefix = "file:";
constexpr std::string_view kUringPrefix = "uring:";

Status ValidateFileOptions(const BackendOptions& options) {
  if (options.block_bytes <= 0 || options.block_bytes % 4096 != 0) {
    return InvalidArgumentError(
        "file-backed backends need block_bytes as a positive multiple of "
        "4096 (O_DIRECT sector alignment)");
  }
  return OkStatus();
}

}  // namespace

StatusOr<std::unique_ptr<StorageBackend>> MakeStorageBackend(
    std::string_view spec, const BackendOptions& options) {
  if (spec == "mem") {
    return std::unique_ptr<StorageBackend>(new MemBackend(options));
  }
  if (spec.substr(0, kFilePrefix.size()) == kFilePrefix) {
    const std::string_view dir = spec.substr(kFilePrefix.size());
    if (dir.empty()) {
      return InvalidArgumentError("file: spec needs a directory");
    }
    SCADDAR_RETURN_IF_ERROR(ValidateFileOptions(options));
    return std::unique_ptr<StorageBackend>(
        new SyncFileBackend(std::string(dir), options));
  }
  if (spec.substr(0, kUringPrefix.size()) == kUringPrefix) {
    const std::string_view dir = spec.substr(kUringPrefix.size());
    if (dir.empty()) {
      return InvalidArgumentError("uring: spec needs a directory");
    }
    SCADDAR_RETURN_IF_ERROR(ValidateFileOptions(options));
    if (!UringAvailable()) {
      // Same files, same layout — scenarios written for uring keep running
      // on kernels (or seccomp sandboxes) that refuse io_uring_setup.
      return std::unique_ptr<StorageBackend>(
          new SyncFileBackend(std::string(dir), options));
    }
    return std::unique_ptr<StorageBackend>(
        new UringBackend(std::string(dir), options));
  }
  return InvalidArgumentError("unknown storage backend spec: " +
                              std::string(spec));
}

}  // namespace scaddar
