#include "storage/disk_array.h"

#include <algorithm>

namespace scaddar {

Status DiskArray::SyncLiveSet(const std::vector<PhysicalDiskId>& live) {
  std::unordered_map<PhysicalDiskId, bool> next_live;
  next_live.reserve(live.size());
  for (const PhysicalDiskId id : live) {
    next_live[id] = true;
    if (!disks_.contains(id)) {
      disks_.emplace(id, SimDisk(id, default_spec_));
    }
  }
  // Disks leaving the live set must already be drained.
  for (const auto& [id, was_live] : live_) {
    if (was_live && !next_live.contains(id)) {
      const SimDisk& disk = disks_.at(id);
      if (disk.num_blocks() != 0) {
        return FailedPreconditionError(
            "cannot retire a disk that still holds blocks");
      }
    }
  }
  live_ = std::move(next_live);
  num_live_ = static_cast<int64_t>(live.size());
  ++generation_;
  return OkStatus();
}

Status DiskArray::AddDisk(PhysicalDiskId id, const DiskSpec& spec) {
  if (disks_.contains(id)) {
    return AlreadyExistsError("disk id already present");
  }
  disks_.emplace(id, SimDisk(id, spec));
  live_[id] = true;
  ++num_live_;
  ++generation_;
  return OkStatus();
}

bool DiskArray::IsLive(PhysicalDiskId id) const {
  const auto it = live_.find(id);
  return it != live_.end() && it->second;
}

StatusOr<SimDisk*> DiskArray::GetDisk(PhysicalDiskId id) {
  const auto it = disks_.find(id);
  if (it == disks_.end()) {
    return NotFoundError("unknown disk id");
  }
  return &it->second;
}

StatusOr<const SimDisk*> DiskArray::GetDisk(PhysicalDiskId id) const {
  const auto it = disks_.find(id);
  if (it == disks_.end()) {
    return NotFoundError("unknown disk id");
  }
  return const_cast<const SimDisk*>(&it->second);
}

std::vector<PhysicalDiskId> DiskArray::live_ids() const {
  std::vector<PhysicalDiskId> ids;
  ids.reserve(static_cast<size_t>(num_live_));
  for (const auto& [id, is_live] : live_) {
    if (is_live) {
      ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

int64_t DiskArray::TotalBandwidth() const {
  int64_t total = 0;
  for (const auto& [id, is_live] : live_) {
    if (is_live) {
      total += disks_.at(id).spec().bandwidth_blocks_per_round;
    }
  }
  return total;
}

int64_t DiskArray::TotalFreeCapacity() const {
  int64_t total = 0;
  for (const auto& [id, is_live] : live_) {
    if (is_live) {
      const SimDisk& disk = disks_.at(id);
      total += disk.spec().capacity_blocks - disk.num_blocks();
    }
  }
  return total;
}

std::vector<int64_t> DiskArray::LiveOccupancy() const {
  std::vector<int64_t> occupancy;
  for (const PhysicalDiskId id : live_ids()) {
    occupancy.push_back(disks_.at(id).num_blocks());
  }
  return occupancy;
}

}  // namespace scaddar
