#include "storage/disk_model.h"

#include <cmath>

namespace scaddar {

double BlockServiceTimeMs(const DiskParameters& disk,
                          const RoundParameters& round) {
  SCADDAR_CHECK(disk.rpm > 0.0);
  SCADDAR_CHECK(disk.avg_seek_ms >= 0.0);
  SCADDAR_CHECK(disk.transfer_mb_per_s > 0.0);
  SCADDAR_CHECK(round.block_kb > 0);
  const double half_rotation_ms = 0.5 * 60'000.0 / disk.rpm;
  const double transfer_ms = static_cast<double>(round.block_kb) /
                             (disk.transfer_mb_per_s * 1024.0) * 1000.0;
  return disk.avg_seek_ms + half_rotation_ms + transfer_ms;
}

StatusOr<int64_t> BlocksPerRound(const DiskParameters& disk,
                                 const RoundParameters& round) {
  if (round.round_seconds <= 0.0) {
    return InvalidArgumentError("round length must be positive");
  }
  const double per_block_ms = BlockServiceTimeMs(disk, round);
  const auto blocks = static_cast<int64_t>(
      std::floor(round.round_seconds * 1000.0 / per_block_ms));
  if (blocks < 1) {
    return FailedPreconditionError(
        "disk cannot serve one block within a round");
  }
  return blocks;
}

int64_t CapacityBlocks(const DiskParameters& disk,
                       const RoundParameters& round) {
  SCADDAR_CHECK(disk.capacity_gb > 0);
  SCADDAR_CHECK(round.block_kb > 0);
  return disk.capacity_gb * 1024 * 1024 / round.block_kb;
}

StatusOr<DiskSpec> MakeDiskSpec(const DiskParameters& disk,
                                const RoundParameters& round) {
  SCADDAR_ASSIGN_OR_RETURN(const int64_t bandwidth,
                           BlocksPerRound(disk, round));
  return DiskSpec{.capacity_blocks = CapacityBlocks(disk, round),
                  .bandwidth_blocks_per_round = bandwidth};
}

DiskParameters VintageDisk() {
  return DiskParameters{.rpm = 7200.0,
                        .avg_seek_ms = 8.0,
                        .transfer_mb_per_s = 15.0,
                        .capacity_gb = 18};
}

DiskParameters Year2001Disk() {
  return DiskParameters{.rpm = 10000.0,
                        .avg_seek_ms = 5.0,
                        .transfer_mb_per_s = 40.0,
                        .capacity_gb = 73};
}

DiskParameters ModernDisk() {
  return DiskParameters{.rpm = 7200.0,
                        .avg_seek_ms = 8.0,
                        .transfer_mb_per_s = 250.0,
                        .capacity_gb = 20'000};
}

}  // namespace scaddar
