#include "storage/file_backend.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

namespace scaddar {

namespace {

/// Largest O_DIRECT-legal length <= `len` (sector granularity).
int64_t AlignDownToSector(int64_t len) { return len & ~int64_t{4095}; }

int SyncWorkerCount(const BackendOptions& options) {
  int workers = options.sync_workers;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    workers = std::clamp(workers, 1, 8);
  }
  return workers;
}

}  // namespace

SyncFileBackend::SyncFileBackend(std::string directory,
                                 const BackendOptions& options)
    : StorageBackend(options),
      directory_(std::move(directory)),
      pool_(std::make_unique<ThreadPool>(SyncWorkerCount(options))) {
  MakeDirectories(directory_);
}

SyncFileBackend::~SyncFileBackend() {
  std::vector<IoCompletion> sink;
  (void)DrainCompletions(sink);  // Workers must not outlive the fds.
  for (auto& [id, state] : disks_) {
    if (state.fd >= 0) {
      ::close(state.fd);
    }
  }
}

Status SyncFileBackend::OpenDisk(PhysicalDiskId disk) {
  std::unique_lock<std::mutex> lock(mu_);
  DiskState& state = disks_[disk];
  if (state.fd >= 0) {
    return OkStatus();
  }
  const std::string path =
      directory_ + "/disk_" + std::to_string(disk) + ".img";
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_DIRECT, 0644);
  if (fd < 0 && (errno == EINVAL || errno == ENOTSUP)) {
    // tmpfs and friends refuse O_DIRECT; buffered I/O is the documented
    // fallback (the bench labels which mode produced its numbers).
    fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  } else if (fd >= 0) {
    direct_ = true;
  }
  if (fd < 0) {
    return UnavailableError("open(" + path + "): " + std::strerror(errno));
  }
  state.fd = fd;
  return OkStatus();
}

Status SyncFileBackend::CloseDisk(PhysicalDiskId disk) {
  std::vector<IoCompletion> sink;
  SCADDAR_RETURN_IF_ERROR(DrainCompletions(sink));
  std::unique_lock<std::mutex> lock(mu_);
  // Re-queue what the pre-close drain collected so callers still see it.
  completed_.insert(completed_.end(), sink.begin(), sink.end());
  const auto it = disks_.find(disk);
  if (it == disks_.end() || it->second.fd < 0) {
    return NotFoundError("disk not open");
  }
  ::close(it->second.fd);
  disks_.erase(it);
  return OkStatus();
}

StatusOr<SyncFileBackend::DiskState*> SyncFileBackend::State(
    PhysicalDiskId disk) {
  const auto it = disks_.find(disk);
  if (it == disks_.end() || it->second.fd < 0) {
    return NotFoundError("disk not open");
  }
  return &it->second;
}

StatusOr<int64_t> SyncFileBackend::EnqueueRead(PhysicalDiskId disk,
                                               int64_t slot, std::byte* buf) {
  std::unique_lock<std::mutex> lock(mu_);
  SCADDAR_ASSIGN_OR_RETURN(DiskState* state, State(disk));
  PendingOp op;
  op.op = IoOp::kRead;
  op.token = next_token_++;
  op.offset = slot * block_bytes();
  op.buf = buf;
  op.fault = NextFault(disk, IoOp::kRead);
  state->queued.push_back(op);
  if (static_cast<int>(state->queued.size()) >= queue_depth()) {
    DispatchLocked(disk, *state);
  }
  return op.token;
}

StatusOr<int64_t> SyncFileBackend::EnqueueWrite(PhysicalDiskId disk,
                                                int64_t slot,
                                                const std::byte* buf) {
  std::unique_lock<std::mutex> lock(mu_);
  SCADDAR_ASSIGN_OR_RETURN(DiskState* state, State(disk));
  PendingOp op;
  op.op = IoOp::kWrite;
  op.token = next_token_++;
  op.offset = slot * block_bytes();
  op.src = buf;
  op.fault = NextFault(disk, IoOp::kWrite);
  state->queued.push_back(op);
  if (static_cast<int>(state->queued.size()) >= queue_depth()) {
    DispatchLocked(disk, *state);
  }
  return op.token;
}

IoCompletion SyncFileBackend::Execute(int fd, const PendingOp& op) {
  IoCompletion completion;
  completion.token = op.token;
  if (op.fault == IoFault::kEio) {
    completion.status = UnavailableError(
        op.op == IoOp::kRead ? "injected EIO on read"
                             : "injected EIO on write");
    return completion;
  }
  int64_t len = block_bytes();
  if (op.fault == IoFault::kShort) {
    len /= 2;
    if (direct_) {
      len = AlignDownToSector(len);
    }
  }
  ssize_t res = 0;
  if (len > 0) {
    res = op.op == IoOp::kRead
              ? ::pread(fd, op.buf, static_cast<size_t>(len), op.offset)
              : ::pwrite(fd, op.src, static_cast<size_t>(len), op.offset);
  }
  if (res < 0) {
    completion.status = UnavailableError(
        std::string(op.op == IoOp::kRead ? "pread: " : "pwrite: ") +
        std::strerror(errno));
    return completion;
  }
  completion.bytes = res;
  return completion;
}

void SyncFileBackend::DispatchLocked(PhysicalDiskId disk, DiskState& state) {
  if (state.queued.empty() || state.worker_busy) {
    return;  // An active worker re-dispatches leftovers when it finishes.
  }
  state.worker_busy = true;
  ++in_flight_batches_;
  ++stats_.submit_batches;
  const int fd = state.fd;
  std::vector<PendingOp> batch = std::move(state.queued);
  state.queued.clear();
  pool_->Schedule([this, disk, fd, batch = std::move(batch)]() mutable {
    // The per-disk worker: drain this batch serially, then pick up anything
    // enqueued meanwhile — one logical queue-depth-1 executor per spindle.
    while (true) {
      std::vector<IoCompletion> done;
      done.reserve(batch.size());
      for (const PendingOp& op : batch) {
        done.push_back(Execute(fd, op));
      }
      std::unique_lock<std::mutex> lock(mu_);
      for (size_t i = 0; i < done.size(); ++i) {
        if (done[i].status.ok()) {
          (batch[i].op == IoOp::kRead ? stats_.reads : stats_.writes)++;
        }
        completed_.push_back(std::move(done[i]));
      }
      const auto it = disks_.find(disk);
      if (it != disks_.end() && !it->second.queued.empty()) {
        batch = std::move(it->second.queued);
        it->second.queued.clear();
        ++stats_.submit_batches;
        continue;
      }
      if (it != disks_.end()) {
        it->second.worker_busy = false;
      }
      --in_flight_batches_;
      if (in_flight_batches_ == 0) {
        idle_.notify_all();
      }
      return;
    }
  });
}

Status SyncFileBackend::Flush(PhysicalDiskId disk) {
  std::unique_lock<std::mutex> lock(mu_);
  SCADDAR_ASSIGN_OR_RETURN(DiskState* state, State(disk));
  SCADDAR_CHECK(state->queued.empty() && !state->worker_busy);
  const int fd = state->fd;
  lock.unlock();
  if (::fdatasync(fd) != 0) {
    return UnavailableError(std::string("fdatasync: ") +
                            std::strerror(errno));
  }
  lock.lock();
  ++stats_.flushes;
  return OkStatus();
}

Status SyncFileBackend::SubmitAll() {
  std::unique_lock<std::mutex> lock(mu_);
  for (auto& [disk, state] : disks_) {
    DispatchLocked(disk, state);
  }
  return OkStatus();
}

Status SyncFileBackend::DrainCompletions(std::vector<IoCompletion>& out) {
  SCADDAR_RETURN_IF_ERROR(SubmitAll());
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_batches_ == 0; });
  for (IoCompletion& completion : completed_) {
    out.push_back(std::move(completion));
  }
  completed_.clear();
  return OkStatus();
}

}  // namespace scaddar
