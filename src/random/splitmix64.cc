#include "random/splitmix64.h"

#include "util/simd.h"

namespace scaddar {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t MixSeeds(uint64_t a, uint64_t b) {
  // Feed both words through the finalizer with distinct round constants so
  // MixSeeds(a, b) != MixSeeds(b, a) in general.
  return Mix64(Mix64(a) ^ (b + 0x9e3779b97f4a7c15ull));
}

uint64_t SplitMix64::Next() {
  state_ += 0x9e3779b97f4a7c15ull;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::unique_ptr<Prng> SplitMix64::Clone() const {
  auto clone = std::make_unique<SplitMix64>(0);
  clone->state_ = state_;
  return clone;
}

namespace internal {

void FillSplitMix64(uint64_t seed, uint64_t mask, uint64_t* out, size_t n) {
  if (ActiveSimdLevel() >= SimdLevel::kAvx2) {
    if (const FillSplitMix64Fn fill = Avx2FillSplitMix64()) {
      fill(seed, mask, out, n);
      return;
    }
  }
  SplitMix64 prng(seed);
  for (size_t i = 0; i < n; ++i) {
    out[i] = prng.Next() & mask;
  }
}

}  // namespace internal

}  // namespace scaddar
