#ifndef SCADDAR_RANDOM_DISTRIBUTIONS_H_
#define SCADDAR_RANDOM_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "random/prng.h"

namespace scaddar {

/// Returns an unbiased uniform integer in `[0, bound)`. `bound` must be > 0
/// and, for generators narrower than 64 bits, at most the generator's range
/// (both checked). Uses Lemire's multiply-shift rejection for 64-bit
/// generators and classic modulo rejection otherwise — no modulo bias, which
/// matters because the whole paper is about preserving uniformity.
uint64_t UniformUint64(Prng& prng, uint64_t bound);

/// Returns a uniform double in [0, 1) with 53 random bits.
double UniformDouble(Prng& prng);

/// Returns true with probability `p` (clamped to [0, 1]).
bool Bernoulli(Prng& prng, double p);

/// Samples an exponential with rate `lambda` (> 0, checked).
double ExponentialSample(Prng& prng, double lambda);

/// Samples a Poisson with the given mean (>= 0, checked). Uses Knuth's
/// method for small means and a normal approximation above 64.
int64_t PoissonSample(Prng& prng, double mean);

/// Zipf distribution over ranks `0..n-1` with exponent `theta` (theta == 0
/// is uniform; ~0.729 is the classic video-on-demand popularity skew).
/// Sampling is O(log n) by binary search over the precomputed CDF.
class ZipfDistribution {
 public:
  ZipfDistribution(int64_t n, double theta);

  /// Returns a rank in [0, n); rank 0 is the most popular.
  int64_t Sample(Prng& prng) const;

  int64_t n() const { return static_cast<int64_t>(cdf_.size()); }
  double theta() const { return theta_; }

 private:
  double theta_;
  std::vector<double> cdf_;
};

/// Returns `k` distinct indices drawn uniformly from `[0, n)` (Floyd's
/// algorithm, O(k) expected). Requires 0 <= k <= n.
std::vector<int64_t> SampleWithoutReplacement(Prng& prng, int64_t n,
                                              int64_t k);

/// Fisher-Yates shuffle of `values` in place.
template <typename T>
void Shuffle(Prng& prng, std::vector<T>& values) {
  for (size_t i = values.size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(UniformUint64(prng, i));
    using std::swap;
    swap(values[i - 1], values[j]);
  }
}

}  // namespace scaddar

#endif  // SCADDAR_RANDOM_DISTRIBUTIONS_H_
