#ifndef SCADDAR_RANDOM_XOSHIRO256_H_
#define SCADDAR_RANDOM_XOSHIRO256_H_

#include <array>
#include <cstdint>
#include <memory>

#include "random/prng.h"

namespace scaddar {

/// xoshiro256** 1.0 (Blackman, Vigna 2018): 64 bits of output per step,
/// period 2^256 - 1. State is expanded from the seed with SplitMix64 as the
/// authors recommend.
class Xoshiro256 final : public Prng {
 public:
  explicit Xoshiro256(uint64_t seed);

  uint64_t Next() override;
  int bits() const override { return 64; }
  std::unique_ptr<Prng> Clone() const override;
  std::string_view name() const override { return "xoshiro256"; }

 private:
  std::array<uint64_t, 4> state_ = {};
};

}  // namespace scaddar

#endif  // SCADDAR_RANDOM_XOSHIRO256_H_
