#ifndef SCADDAR_RANDOM_SEQUENCE_H_
#define SCADDAR_RANDOM_SEQUENCE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "random/prng.h"
#include "util/statusor.h"

namespace scaddar {

/// Produces the per-block random numbers `X0(i)` for one object
/// (Definition 3.2): the i-th iteration of `p_r(s_m)`, truncated to `b`
/// random bits. `b` may be smaller than the generator's native width, which
/// is how the paper's Section 5 experiments run with `b = 32`.
///
/// The sequence is reproducible: constructing another `X0Sequence` with the
/// same (kind, seed, bits) yields the same values, so no directory of block
/// locations is ever needed.
class X0Sequence {
 public:
  /// Creates a sequence. Fails if `bits` is not in [1, generator bits].
  static StatusOr<X0Sequence> Create(PrngKind kind, uint64_t seed, int bits);

  X0Sequence(X0Sequence&&) noexcept = default;
  X0Sequence& operator=(X0Sequence&&) noexcept = default;

  /// Deep copy, preserving the position in the stream.
  X0Sequence(const X0Sequence& other);
  X0Sequence& operator=(const X0Sequence& other);

  /// Returns `X0(next_index)` and advances.
  uint64_t Next();

  /// Restarts the sequence from `X0(0)`.
  void Reset();

  /// Convenience: `X0(0) ... X0(n-1)` from a fresh stream. Does not disturb
  /// this object's iteration state (works on a clone).
  std::vector<uint64_t> Materialize(int64_t n) const;

  /// One-shot `X0(0) ... X0(n-1)` without constructing a reusable sequence:
  /// validates like `Create`, allocates exactly one generator, and sizes the
  /// output up front. The ingest path (`Catalog::MaterializeX0`) uses this to
  /// skip the extra per-ingest generator allocation that `Create` +
  /// `Materialize` pays for position independence. Deterministic: repeated
  /// calls with the same arguments are byte-identical. For the counter-based
  /// default generator (`kSplitMix64`) the fill is routed through the
  /// runtime SIMD dispatch (`util/simd.h`) with identical output, so ingest
  /// feeds the batch REMAP kernels with no scalar stage in front.
  static StatusOr<std::vector<uint64_t>> MaterializeOnce(PrngKind kind,
                                                         uint64_t seed,
                                                         int bits, int64_t n);

  /// The paper's `R = 2^bits - 1`.
  uint64_t max_value() const { return MaxRandomForBits(bits_); }

  int bits() const { return bits_; }
  uint64_t seed() const { return seed_; }
  PrngKind kind() const { return kind_; }

 private:
  X0Sequence(PrngKind kind, uint64_t seed, int bits);

  PrngKind kind_;
  uint64_t seed_;
  int bits_;
  std::unique_ptr<Prng> prng_;
};

/// Counter-based random access to an `X0`-like stream: `At(i)` is computable
/// in O(1) without iterating (an extension beyond the paper, which assumed a
/// sequential generator). Statistically equivalent for placement purposes;
/// the integration tests use it for very large objects.
class CounterSequence {
 public:
  /// `bits` must be in [1, 64] (checked).
  CounterSequence(uint64_t seed, int bits);

  /// Returns the i-th value; pure function of (seed, i).
  uint64_t At(int64_t i) const;

  uint64_t max_value() const { return MaxRandomForBits(bits_); }
  int bits() const { return bits_; }

 private:
  uint64_t seed_;
  int bits_;
};

}  // namespace scaddar

#endif  // SCADDAR_RANDOM_SEQUENCE_H_
