#ifndef SCADDAR_RANDOM_PRNG_H_
#define SCADDAR_RANDOM_PRNG_H_

#include <cstdint>
#include <memory>
#include <string_view>

#include "util/intmath.h"
#include "util/status.h"
#include "util/statusor.h"

namespace scaddar {

/// The paper's `p_r(s)` (Definition 3.1/3.2): a seeded pseudo-random
/// generator whose output sequence is fully reproducible from the seed.
/// Every iteration returns the next b-bit value in `[0, 2^b - 1]`, where
/// `b == bits()` is a property of the concrete generator.
///
/// Implementations must be deterministic: two instances constructed with the
/// same seed produce identical sequences, which is what lets a CM server
/// regenerate block locations without a directory.
class Prng {
 public:
  virtual ~Prng() = default;

  Prng(const Prng&) = delete;
  Prng& operator=(const Prng&) = delete;

  /// Returns the next value in the pseudo-random sequence.
  virtual uint64_t Next() = 0;

  /// Number of random bits per output (the paper's `b`).
  virtual int bits() const = 0;

  /// Copies the generator including its current position in the sequence.
  virtual std::unique_ptr<Prng> Clone() const = 0;

  /// Stable generator name for registries and bench labels.
  virtual std::string_view name() const = 0;

  /// The paper's `R = 2^b - 1`: the largest value `Next()` can return.
  uint64_t max() const { return MaxRandomForBits(bits()); }

 protected:
  Prng() = default;
};

/// Identifies a concrete generator for `MakePrng` and the policy registry.
enum class PrngKind {
  kSplitMix64,   // 64-bit, default
  kXoshiro256,   // 64-bit
  kLcg48,        // 48-bit (drand48-style linear congruential)
  kPcg32,        // 32-bit (matches the paper's Section 5 setting b=32)
};

/// Constructs a generator of `kind` seeded with `seed`.
std::unique_ptr<Prng> MakePrng(PrngKind kind, uint64_t seed);

/// Parses a generator name ("splitmix64", "xoshiro256", "lcg48", "pcg32").
StatusOr<PrngKind> PrngKindFromName(std::string_view name);

/// Returns the canonical name of `kind`.
std::string_view PrngKindName(PrngKind kind);

}  // namespace scaddar

#endif  // SCADDAR_RANDOM_PRNG_H_
