#include "random/prng.h"

#include "random/lcg48.h"
#include "random/pcg32.h"
#include "random/splitmix64.h"
#include "random/xoshiro256.h"

namespace scaddar {

std::unique_ptr<Prng> MakePrng(PrngKind kind, uint64_t seed) {
  switch (kind) {
    case PrngKind::kSplitMix64:
      return std::make_unique<SplitMix64>(seed);
    case PrngKind::kXoshiro256:
      return std::make_unique<Xoshiro256>(seed);
    case PrngKind::kLcg48:
      return std::make_unique<Lcg48>(seed);
    case PrngKind::kPcg32:
      return std::make_unique<Pcg32>(seed);
  }
  SCADDAR_CHECK(false);
  return nullptr;
}

StatusOr<PrngKind> PrngKindFromName(std::string_view name) {
  if (name == "splitmix64") {
    return PrngKind::kSplitMix64;
  }
  if (name == "xoshiro256") {
    return PrngKind::kXoshiro256;
  }
  if (name == "lcg48") {
    return PrngKind::kLcg48;
  }
  if (name == "pcg32") {
    return PrngKind::kPcg32;
  }
  return InvalidArgumentError("unknown PRNG name");
}

std::string_view PrngKindName(PrngKind kind) {
  switch (kind) {
    case PrngKind::kSplitMix64:
      return "splitmix64";
    case PrngKind::kXoshiro256:
      return "xoshiro256";
    case PrngKind::kLcg48:
      return "lcg48";
    case PrngKind::kPcg32:
      return "pcg32";
  }
  return "unknown";
}

}  // namespace scaddar
