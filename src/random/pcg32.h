#ifndef SCADDAR_RANDOM_PCG32_H_
#define SCADDAR_RANDOM_PCG32_H_

#include <cstdint>
#include <memory>

#include "random/prng.h"

namespace scaddar {

/// PCG-XSH-RR 64/32 (O'Neill 2014): 32 bits of output per step. Matches the
/// paper's Section 5 experiments which use a 32-bit generator (`b = 32`),
/// making the range-shrinkage threshold reachable in ~8 operations.
class Pcg32 final : public Prng {
 public:
  explicit Pcg32(uint64_t seed);

  uint64_t Next() override;
  int bits() const override { return 32; }
  std::unique_ptr<Prng> Clone() const override;
  std::string_view name() const override { return "pcg32"; }

 private:
  Pcg32() = default;

  uint64_t state_ = 0;
  uint64_t inc_ = 0;  // Stream selector; always odd.
};

}  // namespace scaddar

#endif  // SCADDAR_RANDOM_PCG32_H_
