// AVX2 SplitMix64 stream fill: lane = counter. The generator's state after
// i steps is `seed + (i+1)*gamma`, so four consecutive stream positions are
// four independent counters; the finalizer is xor-shift-multiply, exact
// lane-wise with `MulLo64`. Output is byte-identical to the sequential
// generator (proven in tests/simd_kernel_test.cc).
//
// Compiled with -mavx2 per-file (src/CMakeLists.txt), like
// core/compiled_log_simd.cc; runtime dispatch decides whether it runs.

#include "random/splitmix64.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include "util/simd_avx2.h"

namespace scaddar::internal {
namespace {

constexpr uint64_t kGamma = 0x9e3779b97f4a7c15ull;

__m256i Finalize(__m256i z) {
  z = avx2::MulLo64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
                    _mm256_set1_epi64x(
                        static_cast<int64_t>(0xbf58476d1ce4e5b9ull)));
  z = avx2::MulLo64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
                    _mm256_set1_epi64x(
                        static_cast<int64_t>(0x94d049bb133111ebull)));
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

void FillAvx2(uint64_t seed, uint64_t mask, uint64_t* out, size_t n) {
  const size_t vec_count = n & ~size_t{3};
  // States for positions i..i+3 are seed + (i+1)*gamma .. seed + (i+4)*gamma
  // (unsigned wrap-around matches the scalar generator exactly).
  __m256i state = _mm256_add_epi64(
      _mm256_set1_epi64x(static_cast<int64_t>(seed)),
      _mm256_setr_epi64x(static_cast<int64_t>(kGamma),
                         static_cast<int64_t>(2 * kGamma),
                         static_cast<int64_t>(3 * kGamma),
                         static_cast<int64_t>(4 * kGamma)));
  const __m256i step = _mm256_set1_epi64x(static_cast<int64_t>(4 * kGamma));
  const __m256i mask4 = _mm256_set1_epi64x(static_cast<int64_t>(mask));
  for (size_t i = 0; i < vec_count; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_and_si256(Finalize(state), mask4));
    state = _mm256_add_epi64(state, step);
  }
  // Mix64(x) is finalize(x + gamma), so output i is Mix64(seed + i*gamma).
  for (size_t i = vec_count; i < n; ++i) {
    out[i] = Mix64(seed + static_cast<uint64_t>(i) * kGamma) & mask;
  }
}

}  // namespace

FillSplitMix64Fn Avx2FillSplitMix64() { return &FillAvx2; }

}  // namespace scaddar::internal

#else  // !defined(__AVX2__)

namespace scaddar::internal {

FillSplitMix64Fn Avx2FillSplitMix64() { return nullptr; }

}  // namespace scaddar::internal

#endif  // defined(__AVX2__)
