#include "random/distributions.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/status.h"

namespace scaddar {

namespace {

// Lemire's nearly-divisionless unbiased bounded sampling for full-width
// 64-bit generators.
uint64_t UniformUint64From64(Prng& prng, uint64_t bound) {
  unsigned __int128 m =
      static_cast<unsigned __int128>(prng.Next()) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      m = static_cast<unsigned __int128>(prng.Next()) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

}  // namespace

uint64_t UniformUint64(Prng& prng, uint64_t bound) {
  SCADDAR_CHECK(bound > 0);
  if (prng.bits() == 64) {
    return UniformUint64From64(prng, bound);
  }
  const uint64_t span = prng.max() + 1;  // bits() < 64, so no overflow.
  SCADDAR_CHECK(bound <= span);
  const uint64_t limit = span - span % bound;
  uint64_t value = prng.Next();
  while (value >= limit) {
    value = prng.Next();
  }
  return value % bound;
}

double UniformDouble(Prng& prng) {
  uint64_t mantissa;
  if (prng.bits() >= 53) {
    mantissa = prng.Next() >> (prng.bits() - 53);
  } else {
    // Stitch two draws for narrow generators.
    const int low_bits = 53 - prng.bits();
    mantissa = (prng.Next() << low_bits) |
               (prng.Next() & ((uint64_t{1} << low_bits) - 1));
  }
  return static_cast<double>(mantissa) * 0x1.0p-53;
}

bool Bernoulli(Prng& prng, double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return UniformDouble(prng) < p;
}

double ExponentialSample(Prng& prng, double lambda) {
  SCADDAR_CHECK(lambda > 0.0);
  // 1 - U is in (0, 1], so the log argument is never zero.
  return -std::log(1.0 - UniformDouble(prng)) / lambda;
}

int64_t PoissonSample(Prng& prng, double mean) {
  SCADDAR_CHECK(mean >= 0.0);
  if (mean == 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    // Normal approximation with continuity correction; adequate for the
    // workload generator's arrival batching.
    const double u1 = UniformDouble(prng);
    const double u2 = UniformDouble(prng);
    const double z = std::sqrt(-2.0 * std::log(1.0 - u1)) *
                     std::cos(2.0 * M_PI * u2);
    const double value = mean + std::sqrt(mean) * z + 0.5;
    return value <= 0.0 ? 0 : static_cast<int64_t>(value);
  }
  const double limit = std::exp(-mean);
  int64_t count = -1;
  double product = 1.0;
  do {
    ++count;
    product *= UniformDouble(prng);
  } while (product > limit);
  return count;
}

ZipfDistribution::ZipfDistribution(int64_t n, double theta) : theta_(theta) {
  SCADDAR_CHECK(n > 0);
  SCADDAR_CHECK(theta >= 0.0);
  cdf_.resize(static_cast<size_t>(n));
  double total = 0.0;
  for (int64_t rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), theta);
    cdf_[static_cast<size_t>(rank)] = total;
  }
  for (double& value : cdf_) {
    value /= total;
  }
  cdf_.back() = 1.0;  // Guard against accumulated rounding.
}

int64_t ZipfDistribution::Sample(Prng& prng) const {
  const double u = UniformDouble(prng);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? static_cast<int64_t>(cdf_.size()) - 1
                          : static_cast<int64_t>(it - cdf_.begin());
}

std::vector<int64_t> SampleWithoutReplacement(Prng& prng, int64_t n,
                                              int64_t k) {
  SCADDAR_CHECK(n >= 0);
  SCADDAR_CHECK(k >= 0 && k <= n);
  // Floyd's algorithm: for j in [n-k, n), pick t uniform in [0, j]; insert t
  // unless already present, else insert j.
  std::unordered_set<int64_t> chosen;
  std::vector<int64_t> result;
  result.reserve(static_cast<size_t>(k));
  for (int64_t j = n - k; j < n; ++j) {
    const int64_t t = static_cast<int64_t>(
        UniformUint64(prng, static_cast<uint64_t>(j) + 1));
    if (chosen.insert(t).second) {
      result.push_back(t);
    } else {
      chosen.insert(j);
      result.push_back(j);
    }
  }
  return result;
}

}  // namespace scaddar
