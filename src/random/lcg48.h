#ifndef SCADDAR_RANDOM_LCG48_H_
#define SCADDAR_RANDOM_LCG48_H_

#include <cstdint>
#include <memory>

#include "random/prng.h"

namespace scaddar {

/// A 48-bit linear congruential generator using the drand48 constants
/// (a = 0x5deece66d, c = 0xb, modulus 2^48). Included because classic CM
/// server implementations of the paper's era used exactly this family; its
/// weaker low-order bits make it a useful stress case for the uniformity
/// tests (SCADDAR consumes the random number's *quotient*, i.e. high bits,
/// which is the well-conditioned part of an LCG).
class Lcg48 final : public Prng {
 public:
  explicit Lcg48(uint64_t seed);

  uint64_t Next() override;
  int bits() const override { return 48; }
  std::unique_ptr<Prng> Clone() const override;
  std::string_view name() const override { return "lcg48"; }

 private:
  uint64_t state_;  // Only the low 48 bits are meaningful.
};

}  // namespace scaddar

#endif  // SCADDAR_RANDOM_LCG48_H_
