#include "random/sequence.h"

#include <utility>

#include "random/splitmix64.h"

namespace scaddar {

StatusOr<X0Sequence> X0Sequence::Create(PrngKind kind, uint64_t seed,
                                        int bits) {
  if (bits < 1 || bits > 64) {
    return InvalidArgumentError("bits must be in [1, 64]");
  }
  X0Sequence seq(kind, seed, bits);
  if (bits > seq.prng_->bits()) {
    return InvalidArgumentError("bits exceeds generator output width");
  }
  return seq;
}

X0Sequence::X0Sequence(PrngKind kind, uint64_t seed, int bits)
    : kind_(kind), seed_(seed), bits_(bits), prng_(MakePrng(kind, seed)) {}

X0Sequence::X0Sequence(const X0Sequence& other)
    : kind_(other.kind_),
      seed_(other.seed_),
      bits_(other.bits_),
      prng_(other.prng_->Clone()) {}

X0Sequence& X0Sequence::operator=(const X0Sequence& other) {
  if (this != &other) {
    kind_ = other.kind_;
    seed_ = other.seed_;
    bits_ = other.bits_;
    prng_ = other.prng_->Clone();
  }
  return *this;
}

uint64_t X0Sequence::Next() { return prng_->Next() & max_value(); }

void X0Sequence::Reset() { prng_ = MakePrng(kind_, seed_); }

namespace {

std::vector<uint64_t> FillFromStart(PrngKind kind, uint64_t seed,
                                    uint64_t mask, int64_t n) {
  std::vector<uint64_t> values(static_cast<size_t>(n));
  if (kind == PrngKind::kSplitMix64) {
    // The counter-based default generator fills through the SIMD dispatch
    // (lane = counter) — byte-identical to the sequential loop below.
    internal::FillSplitMix64(seed, mask, values.data(), values.size());
    return values;
  }
  const std::unique_ptr<Prng> prng = MakePrng(kind, seed);
  for (int64_t i = 0; i < n; ++i) {
    values[static_cast<size_t>(i)] = prng->Next() & mask;
  }
  return values;
}

}  // namespace

std::vector<uint64_t> X0Sequence::Materialize(int64_t n) const {
  SCADDAR_CHECK(n >= 0);
  return FillFromStart(kind_, seed_, max_value(), n);
}

StatusOr<std::vector<uint64_t>> X0Sequence::MaterializeOnce(PrngKind kind,
                                                            uint64_t seed,
                                                            int bits,
                                                            int64_t n) {
  if (bits < 1 || bits > 64) {
    return InvalidArgumentError("bits must be in [1, 64]");
  }
  if (n < 0) {
    return InvalidArgumentError("block count must be >= 0");
  }
  if (bits > MakePrng(kind, seed)->bits()) {
    return InvalidArgumentError("bits exceeds generator output width");
  }
  return FillFromStart(kind, seed, MaxRandomForBits(bits), n);
}

CounterSequence::CounterSequence(uint64_t seed, int bits)
    : seed_(seed), bits_(bits) {
  SCADDAR_CHECK(bits >= 1 && bits <= 64);
}

uint64_t CounterSequence::At(int64_t i) const {
  SCADDAR_CHECK(i >= 0);
  return Mix64(seed_ ^ (static_cast<uint64_t>(i) * 0xd1342543de82ef95ull)) &
         max_value();
}

}  // namespace scaddar
