#include "random/pcg32.h"

#include "random/splitmix64.h"

namespace scaddar {

namespace {
constexpr uint64_t kPcgMultiplier = 6364136223846793005ull;
}  // namespace

Pcg32::Pcg32(uint64_t seed) {
  // Standard pcg32_srandom initialization: derive state and stream from the
  // seed via the SplitMix finalizer so nearby seeds give unrelated streams.
  inc_ = (Mix64(seed ^ 0xda3e39cb94b95bdbull) << 1u) | 1u;
  state_ = 0;
  Next();
  state_ += Mix64(seed);
  Next();
}

uint64_t Pcg32::Next() {
  const uint64_t old_state = state_;
  state_ = old_state * kPcgMultiplier + inc_;
  const uint32_t xorshifted =
      static_cast<uint32_t>(((old_state >> 18u) ^ old_state) >> 27u);
  const uint32_t rot = static_cast<uint32_t>(old_state >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::unique_ptr<Prng> Pcg32::Clone() const {
  std::unique_ptr<Pcg32> clone(new Pcg32());
  clone->state_ = state_;
  clone->inc_ = inc_;
  return clone;
}

}  // namespace scaddar
