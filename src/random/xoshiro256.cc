#include "random/xoshiro256.h"

#include "random/splitmix64.h"

namespace scaddar {

namespace {

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Xoshiro256::Xoshiro256(uint64_t seed) {
  SplitMix64 seeder(seed);
  for (uint64_t& word : state_) {
    word = seeder.Next();
  }
  // The all-zero state is invalid (fixed point). SplitMix64 output makes it
  // astronomically unlikely, but guard anyway for adversarial seeds.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ull;
  }
}

uint64_t Xoshiro256::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

std::unique_ptr<Prng> Xoshiro256::Clone() const {
  auto clone = std::make_unique<Xoshiro256>(0);
  clone->state_ = state_;
  return clone;
}

}  // namespace scaddar
