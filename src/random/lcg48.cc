#include "random/lcg48.h"

namespace scaddar {

namespace {
constexpr uint64_t kMask48 = (uint64_t{1} << 48) - 1;
constexpr uint64_t kMultiplier = 0x5deece66dull;
constexpr uint64_t kIncrement = 0xbull;
}  // namespace

Lcg48::Lcg48(uint64_t seed) : state_(seed & kMask48) {}

uint64_t Lcg48::Next() {
  state_ = (state_ * kMultiplier + kIncrement) & kMask48;
  return state_;
}

std::unique_ptr<Prng> Lcg48::Clone() const {
  auto clone = std::make_unique<Lcg48>(0);
  clone->state_ = state_;
  return clone;
}

}  // namespace scaddar
