#ifndef SCADDAR_RANDOM_SPLITMIX64_H_
#define SCADDAR_RANDOM_SPLITMIX64_H_

#include <cstdint>
#include <memory>

#include "random/prng.h"

namespace scaddar {

/// Applies the SplitMix64 finalizer to `x`. A strong 64-bit mixing function
/// usable as a hash; also used to derive per-object seeds and seed
/// generations (`hash(s_m, generation)`).
uint64_t Mix64(uint64_t x);

/// Combines two 64-bit values into one well-mixed value. Deterministic;
/// used to derive child seeds (e.g. per-object seeds from a master seed).
uint64_t MixSeeds(uint64_t a, uint64_t b);

/// SplitMix64 (Steele, Lea, Flood 2014): 64 bits of output per step from a
/// 64-bit counter state. Fast, full 2^64 period, passes BigCrush when used
/// as intended. This is the library's default `p_r(s)`.
class SplitMix64 final : public Prng {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() override;
  int bits() const override { return 64; }
  std::unique_ptr<Prng> Clone() const override;
  std::string_view name() const override { return "splitmix64"; }

 private:
  uint64_t state_;
};

namespace internal {

/// Fills `out[0, n)` with the first `n` outputs of `SplitMix64(seed)`, each
/// masked to `mask` — byte-identical to n calls of `Next() & mask`, but
/// routed through the best available SIMD backend. SplitMix64's state after
/// i steps is the closed form `seed + (i+1)*gamma`, i.e. the stream is
/// counter-based, so lanes evaluate independent counters and the finalizer
/// (xor-shift-multiply, all exact lane ops) vectorizes without any
/// cross-lane dependency. This is what makes `X0Sequence::MaterializeOnce`
/// the last scalar-free stage in front of the batch REMAP kernels.
void FillSplitMix64(uint64_t seed, uint64_t mask, uint64_t* out, size_t n);

/// The AVX2 fill kernel (splitmix64_simd.cc), or nullptr when the binary
/// was built without AVX2 codegen. Exposed for the differential test.
using FillSplitMix64Fn = void (*)(uint64_t seed, uint64_t mask, uint64_t* out,
                                  size_t n);
FillSplitMix64Fn Avx2FillSplitMix64();

}  // namespace internal

}  // namespace scaddar

#endif  // SCADDAR_RANDOM_SPLITMIX64_H_
