#ifndef SCADDAR_HETERO_LOGICAL_MAP_H_
#define SCADDAR_HETERO_LOGICAL_MAP_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "util/statusor.h"

namespace scaddar {

/// A heterogeneous physical disk described by its relative capability
/// (roughly: bandwidth class). A weight-3 disk hosts three logical disks and
/// should carry 3x the blocks of a weight-1 disk.
struct HeteroDisk {
  PhysicalDiskId id = 0;
  int64_t weight = 1;
};

/// The paper's future-work direction (Section 6, via [18] "Continuous
/// Display Using Heterogeneous Disk-Subsystems"): map homogeneous *logical*
/// disks onto heterogeneous *physical* disks so SCADDAR — which assumes
/// homogeneous disks — keeps working unchanged. Each physical disk hosts
/// `weight` logical disks; uniform load over logical disks then yields
/// bandwidth-proportional load over physical disks.
class LogicalMapping {
 public:
  /// Fails if `disks` is empty, weights are non-positive, or ids repeat.
  static StatusOr<LogicalMapping> Create(std::vector<HeteroDisk> disks);

  int64_t num_logical() const {
    return static_cast<int64_t>(logical_owner_.size());
  }
  int64_t num_physical() const {
    return static_cast<int64_t>(disks_.size());
  }

  /// The physical disk hosting logical disk `logical` (checked).
  PhysicalDiskId PhysicalOf(int64_t logical) const;

  /// Logical disk indices hosted by `physical` (checked to exist).
  std::vector<int64_t> LogicalsOf(PhysicalDiskId physical) const;

  const std::vector<HeteroDisk>& disks() const { return disks_; }
  int64_t total_weight() const { return num_logical(); }

  /// Aggregates per-logical-disk block counts (length `num_logical`,
  /// checked) into per-physical-disk counts.
  std::unordered_map<PhysicalDiskId, int64_t> AggregateLoad(
      const std::vector<int64_t>& per_logical) const;

 private:
  LogicalMapping() = default;

  std::vector<HeteroDisk> disks_;
  std::vector<PhysicalDiskId> logical_owner_;  // logical index -> physical.
};

}  // namespace scaddar

#endif  // SCADDAR_HETERO_LOGICAL_MAP_H_
