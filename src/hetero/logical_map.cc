#include "hetero/logical_map.h"

#include <unordered_set>

namespace scaddar {

StatusOr<LogicalMapping> LogicalMapping::Create(
    std::vector<HeteroDisk> disks) {
  if (disks.empty()) {
    return InvalidArgumentError("need at least one physical disk");
  }
  std::unordered_set<PhysicalDiskId> seen;
  LogicalMapping mapping;
  for (const HeteroDisk& disk : disks) {
    if (disk.weight <= 0) {
      return InvalidArgumentError("disk weight must be positive");
    }
    if (!seen.insert(disk.id).second) {
      return InvalidArgumentError("duplicate physical disk id");
    }
    for (int64_t i = 0; i < disk.weight; ++i) {
      mapping.logical_owner_.push_back(disk.id);
    }
  }
  mapping.disks_ = std::move(disks);
  return mapping;
}

PhysicalDiskId LogicalMapping::PhysicalOf(int64_t logical) const {
  SCADDAR_CHECK(logical >= 0 && logical < num_logical());
  return logical_owner_[static_cast<size_t>(logical)];
}

std::vector<int64_t> LogicalMapping::LogicalsOf(
    PhysicalDiskId physical) const {
  std::vector<int64_t> result;
  for (size_t i = 0; i < logical_owner_.size(); ++i) {
    if (logical_owner_[i] == physical) {
      result.push_back(static_cast<int64_t>(i));
    }
  }
  SCADDAR_CHECK(!result.empty());
  return result;
}

std::unordered_map<PhysicalDiskId, int64_t> LogicalMapping::AggregateLoad(
    const std::vector<int64_t>& per_logical) const {
  SCADDAR_CHECK(static_cast<int64_t>(per_logical.size()) == num_logical());
  std::unordered_map<PhysicalDiskId, int64_t> load;
  for (const HeteroDisk& disk : disks_) {
    load[disk.id] = 0;  // Report zero-loaded disks explicitly.
  }
  for (size_t i = 0; i < per_logical.size(); ++i) {
    load[logical_owner_[i]] += per_logical[i];
  }
  return load;
}

}  // namespace scaddar
