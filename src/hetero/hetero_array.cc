#include "hetero/hetero_array.h"

#include <algorithm>

namespace scaddar {

StatusOr<HeteroPlacement> HeteroPlacement::Create(
    std::vector<HeteroDisk> disks) {
  // Validate via the mapping helper (duplicate ids, bad weights, empty).
  SCADDAR_ASSIGN_OR_RETURN(const LogicalMapping mapping,
                           LogicalMapping::Create(disks));
  HeteroPlacement placement;
  placement.policy_ =
      std::make_unique<ScaddarPolicy>(mapping.num_logical());
  placement.disks_ = std::move(disks);
  const std::vector<PhysicalDiskId>& logical =
      placement.policy_->log().physical_disks();
  for (size_t i = 0; i < logical.size(); ++i) {
    placement.owner_[logical[i]] = mapping.PhysicalOf(static_cast<int64_t>(i));
  }
  return placement;
}

Status HeteroPlacement::AddObject(ObjectId id, std::vector<uint64_t> x0) {
  return policy_->AddObject(id, std::move(x0));
}

PhysicalDiskId HeteroPlacement::Locate(ObjectId object,
                                       BlockIndex block) const {
  const PhysicalDiskId logical = policy_->Locate(object, block);
  const auto it = owner_.find(logical);
  SCADDAR_CHECK(it != owner_.end());
  return it->second;
}

Status HeteroPlacement::AddPhysicalDisk(const HeteroDisk& disk) {
  if (disk.weight <= 0) {
    return InvalidArgumentError("disk weight must be positive");
  }
  for (const HeteroDisk& existing : disks_) {
    if (existing.id == disk.id) {
      return AlreadyExistsError("physical disk id already present");
    }
  }
  const PhysicalDiskId first_new = policy_->log().next_physical_id();
  SCADDAR_ASSIGN_OR_RETURN(const ScalingOp op, ScalingOp::Add(disk.weight));
  SCADDAR_RETURN_IF_ERROR(policy_->ApplyOp(op));
  for (int64_t i = 0; i < disk.weight; ++i) {
    owner_[first_new + i] = disk.id;
  }
  disks_.push_back(disk);
  return OkStatus();
}

Status HeteroPlacement::RemovePhysicalDisk(PhysicalDiskId id) {
  const auto disk_it =
      std::find_if(disks_.begin(), disks_.end(),
                   [id](const HeteroDisk& disk) { return disk.id == id; });
  if (disk_it == disks_.end()) {
    return NotFoundError("physical disk not present");
  }
  if (disks_.size() == 1) {
    return FailedPreconditionError("cannot remove the last physical disk");
  }
  // Collect the logical slots this physical disk hosts.
  const std::vector<PhysicalDiskId>& logical =
      policy_->log().physical_disks();
  std::vector<DiskSlot> slots;
  for (size_t i = 0; i < logical.size(); ++i) {
    if (owner_.at(logical[i]) == id) {
      slots.push_back(static_cast<DiskSlot>(i));
    }
  }
  SCADDAR_CHECK(!slots.empty());
  std::vector<PhysicalDiskId> retired_logical;
  for (const DiskSlot slot : slots) {
    retired_logical.push_back(logical[static_cast<size_t>(slot)]);
  }
  SCADDAR_ASSIGN_OR_RETURN(const ScalingOp op,
                           ScalingOp::Remove(std::move(slots)));
  SCADDAR_RETURN_IF_ERROR(policy_->ApplyOp(op));
  for (const PhysicalDiskId lid : retired_logical) {
    owner_.erase(lid);
  }
  disks_.erase(disk_it);
  return OkStatus();
}

int64_t HeteroPlacement::total_weight() const {
  int64_t total = 0;
  for (const HeteroDisk& disk : disks_) {
    total += disk.weight;
  }
  return total;
}

std::unordered_map<PhysicalDiskId, int64_t> HeteroPlacement::PhysicalLoad()
    const {
  std::unordered_map<PhysicalDiskId, int64_t> load;
  for (const HeteroDisk& disk : disks_) {
    load[disk.id] = 0;
  }
  const std::vector<int64_t> per_logical = policy_->PerDiskCounts();
  const std::vector<PhysicalDiskId>& logical =
      policy_->log().physical_disks();
  for (size_t i = 0; i < logical.size(); ++i) {
    load[owner_.at(logical[i])] += per_logical[i];
  }
  return load;
}

}  // namespace scaddar
