#ifndef SCADDAR_HETERO_HETERO_ARRAY_H_
#define SCADDAR_HETERO_HETERO_ARRAY_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "hetero/logical_map.h"
#include "placement/scaddar_policy.h"
#include "util/statusor.h"

namespace scaddar {

/// SCADDAR over heterogeneous physical disks: the evolution sketched in
/// Section 6. A `ScaddarPolicy` runs unchanged over homogeneous *logical*
/// disks; each heterogeneous physical disk hosts as many logical disks as
/// its weight. Adding or removing a physical disk becomes a disk-*group*
/// scaling operation on the logical array, which SCADDAR supports natively.
class HeteroPlacement {
 public:
  /// Starts with the given physical disks (validated like
  /// `LogicalMapping::Create`).
  static StatusOr<HeteroPlacement> Create(std::vector<HeteroDisk> disks);

  HeteroPlacement(HeteroPlacement&&) noexcept = default;
  HeteroPlacement& operator=(HeteroPlacement&&) noexcept = default;

  /// Registers an object's X0 stream (forwarded to the logical policy).
  Status AddObject(ObjectId id, std::vector<uint64_t> x0);

  /// The heterogeneous physical disk holding the block.
  PhysicalDiskId Locate(ObjectId object, BlockIndex block) const;

  /// Adds one physical disk: a logical disk-group addition of
  /// `disk.weight` disks.
  Status AddPhysicalDisk(const HeteroDisk& disk);

  /// Removes one physical disk: a logical disk-group removal of all its
  /// logical disks.
  Status RemovePhysicalDisk(PhysicalDiskId id);

  /// Current physical disks (insertion order).
  const std::vector<HeteroDisk>& physical_disks() const { return disks_; }

  int64_t total_weight() const;

  /// Blocks per physical disk (zero-loaded disks included).
  std::unordered_map<PhysicalDiskId, int64_t> PhysicalLoad() const;

  /// The underlying logical-disk policy (for range/tolerance inspection).
  const ScaddarPolicy& policy() const { return *policy_; }

 private:
  HeteroPlacement() = default;

  std::unique_ptr<ScaddarPolicy> policy_;
  std::vector<HeteroDisk> disks_;
  // Logical disk id (the policy's PhysicalDiskId) -> heterogeneous owner.
  std::unordered_map<PhysicalDiskId, PhysicalDiskId> owner_;
};

}  // namespace scaddar

#endif  // SCADDAR_HETERO_HETERO_ARRAY_H_
