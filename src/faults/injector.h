#ifndef SCADDAR_FAULTS_INJECTOR_H_
#define SCADDAR_FAULTS_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.h"
#include "random/prng.h"
#include "util/statusor.h"

namespace scaddar {

/// The durable phases of one journaled block move, in commit order (the
/// write-ahead protocol in `MoveJournal`). Crash points are keyed to the
/// boundary *immediately after* each phase's durable write, so every
/// intermediate on-disk state the protocol can produce is reachable.
enum class MovePhase {
  kIntentLogged = 0,     // WAL intent record written.
  kCopyStaged = 1,       // Block bytes staged on the target disk.
  kCopyLogged = 2,       // WAL copied record written.
  kLocationFlipped = 3,  // Store now serves the block from the target.
  kCommitLogged = 4,     // WAL commit record written.
};
inline constexpr int kNumMovePhases = 5;

/// The durable phases of one checkpoint-set write (`CheckpointManager`), in
/// write order. Kill points at these boundaries produce every torn-set state
/// the multi-level scheme must survive: nothing written, a primary fragment
/// without its redundancy, and a complete set (the benign case).
enum class SnapshotPhase {
  kCaptured = 0,        // State captured in memory; nothing durable yet.
  kPrimaryWritten = 1,  // First fragment durable; redundancy still missing.
  kSetComplete = 2,     // Every fragment durable; the set is valid.
};
inline constexpr int kNumSnapshotPhases = 3;

/// What a scheduled fault does when it fires.
enum class FaultKind {
  /// Kill the process at a (move ordinal, phase) boundary. The executor
  /// stops dead; only state written durably before the boundary survives.
  kCrash,
  /// Unplanned disk death at the start of a round (consumed by the HA
  /// server, which treats it as an Eq. 3a/3b removal with zero drain time).
  kDiskFail,
  /// Probabilistic transient I/O error on block transfers and replica
  /// reads. Fires per attempt with `probability`, from the injector's
  /// seeded generator — identical schedules replay identically.
  kTransientError,
  /// Invoke the registered test hook just before a move ordinal executes
  /// (used to race scaling operations against a migration round).
  kHook,
  /// Probabilistic fault on *real* storage-backend transfers (the
  /// `StorageBackend` fault hook): an op completes with EIO or a short
  /// transfer instead of touching/filling the whole block image.
  kBackendError,
  /// Kill the process at a (snapshot ordinal, snapshot phase) boundary
  /// inside a checkpoint-set write. Fragments durable before the boundary
  /// survive — possibly a torn set the loader must reject.
  kSnapshotCrash,
  /// Flip one byte in the checkpoint fragment being written at a snapshot
  /// location (silent media corruption; caught by checksum at load).
  kSnapshotCorrupt,
};

/// What a kBackendError event does to the transfer it hits.
enum class BackendFaultKind {
  kEio = 0,    // Op fails outright; the medium is untouched.
  kShort = 1,  // Op transfers ~half the block (a torn/short write or read).
};

/// One scheduled fault. Events are keyed to round numbers and, for crash
/// and hook events, to journaled-move ordinals and migration phases.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  /// The event is armed only during this round; -1 arms it every round.
  int64_t round = -1;
  /// kCrash / kHook: fire at this 0-based move ordinal (moves are counted
  /// across rounds since construction or `ResetMoveCount`).
  /// kSnapshotCrash / kSnapshotCorrupt: the 0-based snapshot ordinal
  /// (snapshots counted across the injector's lifetime by `BeginSnapshot`).
  int64_t move = 0;
  /// kCrash: the phase boundary of that move to die at.
  MovePhase phase = MovePhase::kIntentLogged;
  /// kSnapshotCrash: the snapshot-phase boundary to die at.
  SnapshotPhase snapshot_phase = SnapshotPhase::kCaptured;
  /// kDiskFail: the disk to kill. kTransientError: restrict errors to
  /// transfers/reads touching this disk (-1 = any disk).
  /// kSnapshotCorrupt: the snapshot location to corrupt (-1 = any).
  PhysicalDiskId disk = -1;
  /// kTransientError / kBackendError: per-attempt failure probability.
  double probability = 0.0;
  /// kBackendError: what the fault does to the transfer.
  BackendFaultKind backend = BackendFaultKind::kEio;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Shape of `FaultSchedule::Random` output.
struct RandomScheduleOptions {
  int64_t crashes = 1;            // kCrash events at random (move, phase).
  int64_t max_crash_move = 32;    // Crash move ordinals drawn from [0, this).
  int64_t disk_failures = 0;      // kDiskFail events.
  int64_t max_round = 256;        // Failure rounds drawn from [1, this).
  int64_t failure_spacing = 64;   // Minimum rounds between disk failures.
  int64_t max_disk_id = 16;       // Failure targets drawn from [0, this).
  double transient_probability = 0.0;  // > 0 adds one any-disk error event.
};

/// A deterministic, replayable list of fault events. Schedules serialize to
/// a line-oriented text form (see docs/fault_injection.md) and can be
/// generated from a seed, so a failing run is reproduced by its seed alone.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// A seeded random schedule: same seed + options, same events.
  static FaultSchedule Random(uint64_t seed,
                              const RandomScheduleOptions& options);

  void Add(const FaultEvent& event) { events_.push_back(event); }
  const std::vector<FaultEvent>& events() const { return events_; }
  int64_t num_events() const { return static_cast<int64_t>(events_.size()); }

  /// Text form: one `crash|fail|transient|hook|backend|snapcrash|
  /// snapcorrupt` line per event; round-trips via `Deserialize`.
  std::string Serialize() const;
  static StatusOr<FaultSchedule> Deserialize(std::string_view text);

  friend bool operator==(const FaultSchedule& a, const FaultSchedule& b) {
    return a.events_ == b.events_;
  }

 private:
  std::vector<FaultEvent> events_;
};

/// The runtime fault engine. Attached to a `DiskArray` (and read from there
/// by the migration executor and the servers), it answers "does a fault
/// fire here?" at every hook point. Detached (the default null pointer) the
/// hooks cost one branch — the zero-cost-when-disabled contract.
///
/// One-shot events (crash, hook, disk failure) disarm after firing so a
/// post-recovery rerun of the same rounds proceeds cleanly; probabilistic
/// events stay armed and draw from the seeded generator.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSchedule schedule, uint64_t seed = 0);

  /// Round gate: called once at the top of every server round.
  void BeginRound(int64_t round);

  /// Disks scheduled to die this round (kDiskFail events; each returned
  /// once). The HA server calls this right after `BeginRound`.
  std::vector<PhysicalDiskId> TakeDiskFailures();

  /// Called by the executor when a move is about to execute; advances the
  /// move ordinal and fires any kHook event scheduled for it.
  void BeginMove();

  /// True iff a kCrash event fires at this phase boundary of the current
  /// move. The caller must then abandon all in-memory state.
  bool CrashAt(MovePhase phase);

  /// True iff a transient error hits a transfer from `from` to `to`.
  bool FailTransfer(PhysicalDiskId from, PhysicalDiskId to);

  /// True iff a transient error hits a block read from `disk`.
  bool FailRead(PhysicalDiskId disk);

  /// Called by `CheckpointManager::Write` when a checkpoint set is about to
  /// be captured; advances the snapshot ordinal that kSnapshotCrash and
  /// kSnapshotCorrupt events key on.
  void BeginSnapshot();

  /// True iff a kSnapshotCrash event fires at this phase boundary of the
  /// current snapshot. The caller must treat the process as killed.
  bool CrashAtSnapshot(SnapshotPhase phase);

  /// True iff a kSnapshotCorrupt event hits the fragment being written at
  /// `location` during the current snapshot (one-shot per event).
  bool CorruptSnapshotAt(int64_t location);

  /// Consulted by the storage backend's fault hook for every real block
  /// transfer on `disk`. Armed kBackendError events draw per-op from the
  /// seeded generator (first hit wins); returns the fault to inject, or
  /// nothing. Same replayability contract as `FailTransfer`.
  std::optional<BackendFaultKind> NextBackendFault(PhysicalDiskId disk);

  /// Test hook invoked by kHook events (e.g. enqueue a scaling operation
  /// mid-round to exercise the executor's epoch guard).
  void SetHook(std::function<void()> hook) { hook_ = std::move(hook); }

  /// Restarts move-ordinal counting (schedules keyed to a fresh executor).
  void ResetMoveCount() { move_ = -1; }

  /// The ordinal `BeginMove` last advanced to (-1 before any move).
  int64_t current_move() const { return move_; }

  /// Re-enters a move recorded earlier in the round *without* advancing the
  /// count or firing hooks. Two-phase engine rounds stage every move first
  /// and complete the write-ahead protocol after the batched copies land;
  /// the commit pass resumes each staged move's ordinal so per-move crash
  /// events at the commit-side phase boundaries (kCopyLogged and later)
  /// still target the move they name.
  void ResumeMove(int64_t ordinal) { move_ = ordinal; }

  const FaultSchedule& schedule() const { return schedule_; }
  int64_t current_round() const { return round_; }
  int64_t moves_seen() const { return move_ + 1; }
  int64_t crashes_fired() const { return crashes_fired_; }
  int64_t hooks_fired() const { return hooks_fired_; }
  int64_t transient_errors_fired() const { return transient_errors_fired_; }
  int64_t disk_failures_fired() const { return disk_failures_fired_; }
  int64_t backend_faults_fired() const { return backend_faults_fired_; }
  int64_t snapshot_crashes_fired() const { return snapshot_crashes_fired_; }
  int64_t snapshot_corruptions_fired() const {
    return snapshot_corruptions_fired_;
  }

  /// The ordinal `BeginSnapshot` last advanced to (-1 before any snapshot).
  int64_t current_snapshot() const { return snapshot_; }

 private:
  bool RoundMatches(const FaultEvent& event) const {
    return event.round < 0 || event.round == round_;
  }
  bool TransientHits(PhysicalDiskId a, PhysicalDiskId b);

  FaultSchedule schedule_;
  std::vector<bool> fired_;  // Parallel to schedule_.events().
  std::unique_ptr<Prng> prng_;
  std::function<void()> hook_;
  int64_t round_ = -1;
  int64_t move_ = -1;
  int64_t snapshot_ = -1;
  int64_t crashes_fired_ = 0;
  int64_t hooks_fired_ = 0;
  int64_t transient_errors_fired_ = 0;
  int64_t disk_failures_fired_ = 0;
  int64_t backend_faults_fired_ = 0;
  int64_t snapshot_crashes_fired_ = 0;
  int64_t snapshot_corruptions_fired_ = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_FAULTS_INJECTOR_H_
