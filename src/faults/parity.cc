#include "faults/parity.h"

#include <algorithm>

namespace scaddar {

ParityScheme::ParityScheme(const ScaddarPolicy* policy, int64_t group_size)
    : policy_(policy), group_size_(group_size) {
  SCADDAR_CHECK(policy != nullptr);
  SCADDAR_CHECK(group_size >= 2);
}

ParityScheme::Group ParityScheme::GroupOf(ObjectId object,
                                          BlockIndex block) const {
  const auto total = static_cast<BlockIndex>(policy_->NumBlocksOf(object));
  SCADDAR_CHECK(block >= 0 && block < total);
  Group group;
  const BlockIndex first = (block / group_size_) * group_size_;
  const BlockIndex last = std::min<BlockIndex>(first + group_size_, total);
  int64_t slot_sum = 0;
  const int64_t n = policy_->current_disks();
  std::vector<bool> member_slot(static_cast<size_t>(n), false);
  for (BlockIndex i = first; i < last; ++i) {
    group.members.push_back(i);
    const DiskSlot slot = policy_->LocateSlot(object, i);
    slot_sum += slot;
    member_slot[static_cast<size_t>(slot)] = true;
  }
  // Parity slot: derived from member slots, linearly probed off any member
  // disk so a single disk failure never takes a member *and* the parity.
  // With more distinct member slots than disks this is impossible; then the
  // parity shares a disk and IsRecoverable reports accordingly.
  DiskSlot parity = (slot_sum + 1) % n;
  for (int64_t probe = 0; probe < n; ++probe) {
    const DiskSlot candidate = (parity + probe) % n;
    if (!member_slot[static_cast<size_t>(candidate)]) {
      parity = candidate;
      break;
    }
  }
  group.parity_slot = parity;
  group.parity_disk =
      policy_->log().physical_disks()[static_cast<size_t>(parity)];
  return group;
}

bool ParityScheme::IsRecoverable(ObjectId object, BlockIndex block,
                                 PhysicalDiskId failed) const {
  const Group group = GroupOf(object, block);
  int64_t casualties = group.parity_disk == failed ? 1 : 0;
  for (const BlockIndex member : group.members) {
    if (policy_->Locate(object, member) == failed) {
      ++casualties;
    }
  }
  return casualties <= 1;
}

StatusOr<int64_t> ParityScheme::ReadsToServe(ObjectId object,
                                             BlockIndex block,
                                             PhysicalDiskId failed) const {
  if (policy_->Locate(object, block) != failed) {
    return int64_t{1};
  }
  const Group group = GroupOf(object, block);
  int64_t reads = 0;
  for (const BlockIndex member : group.members) {
    if (member == block) {
      continue;
    }
    if (policy_->Locate(object, member) == failed) {
      return FailedPreconditionError(
          "two group members on the failed disk; single parity "
          "cannot reconstruct");
    }
    ++reads;
  }
  if (group.parity_disk == failed) {
    return FailedPreconditionError(
        "parity and a member share the failed disk");
  }
  return reads + 1;  // Surviving members plus the parity block.
}

}  // namespace scaddar
