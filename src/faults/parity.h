#ifndef SCADDAR_FAULTS_PARITY_H_
#define SCADDAR_FAULTS_PARITY_H_

#include <cstdint>
#include <vector>

#include "placement/scaddar_policy.h"
#include "util/statusor.h"

namespace scaddar {

/// Section 6's second fault-tolerance direction: parity groups instead of
/// full mirroring ("less required storage space"). Every `group_size`
/// consecutive blocks of an object form a parity group with one parity
/// block; a single failed disk is recovered by XOR-ing the surviving
/// members and the parity block.
///
/// The parity block's slot is derived from the group members' slots (sum
/// plus one, modulo Nj, linearly probed off any member's disk), so it needs
/// no directory and moves consistently under scaling operations.
class ParityScheme {
 public:
  /// `group_size` >= 2 (checked); `policy` borrowed (non-null, checked).
  ParityScheme(const ScaddarPolicy* policy, int64_t group_size);

  /// Description of the parity group containing `block`.
  struct Group {
    std::vector<BlockIndex> members;  // Data blocks in the group.
    DiskSlot parity_slot = 0;
    PhysicalDiskId parity_disk = 0;
  };
  Group GroupOf(ObjectId object, BlockIndex block) const;

  /// Number of block reads needed to serve `block` when `failed` is down:
  /// 1 if its disk is healthy, `group members on healthy disks + parity`
  /// for a reconstruction. Fails (FailedPrecondition) when the group has
  /// two casualties (single parity cannot recover) — which the caller can
  /// also probe via `IsRecoverable`.
  StatusOr<int64_t> ReadsToServe(ObjectId object, BlockIndex block,
                                 PhysicalDiskId failed) const;

  /// True iff at most one of {members, parity} of the block's group sits on
  /// `failed`.
  bool IsRecoverable(ObjectId object, BlockIndex block,
                     PhysicalDiskId failed) const;

  /// Fractional storage overhead: one parity block per `group_size` data
  /// blocks.
  double StorageOverhead() const {
    return 1.0 / static_cast<double>(group_size_);
  }

  int64_t group_size() const { return group_size_; }

 private:
  const ScaddarPolicy* policy_;
  int64_t group_size_;
};

}  // namespace scaddar

#endif  // SCADDAR_FAULTS_PARITY_H_
