#ifndef SCADDAR_FAULTS_MIRROR_H_
#define SCADDAR_FAULTS_MIRROR_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "placement/scaddar_policy.h"
#include "util/statusor.h"

namespace scaddar {

/// Section 6's fault-tolerance extension: each block keeps a mirror copy at
/// a fixed slot offset `f(Nj)` from its primary — the paper's example is
/// `f(Nj) = Nj/2`. Because the offset is a pure function of the epoch's disk
/// count, the mirror needs no extra directory state and scales with the
/// same op log as the primaries.
///
/// With `Nj >= 2` the mirror is always on a *different* disk than the
/// primary (offset is clamped to [1, Nj-1]), so any single disk failure
/// leaves every block readable.
class MirroredPlacement {
 public:
  /// Borrows `policy` (must outlive this object; checked non-null).
  explicit MirroredPlacement(const ScaddarPolicy* policy);

  /// The paper's `f(Nj)`: the mirror's slot offset at disk count `n`
  /// (`n/2`, clamped into [1, n-1]; `n` must be >= 2, checked).
  static int64_t MirrorOffset(int64_t n);

  DiskSlot PrimarySlot(ObjectId object, BlockIndex block) const;
  DiskSlot MirrorSlot(ObjectId object, BlockIndex block) const;

  PhysicalDiskId PrimaryOf(ObjectId object, BlockIndex block) const;
  PhysicalDiskId MirrorOf(ObjectId object, BlockIndex block) const;

  /// Where to read the block given the set of failed disks: the primary if
  /// healthy, else the mirror; NotFound if both copies are on failed disks.
  StatusOr<PhysicalDiskId> LocateForRead(
      ObjectId object, BlockIndex block,
      const std::unordered_set<PhysicalDiskId>& failed) const;

  /// Per-disk block counts including mirror copies, indexed like
  /// `policy->log().physical_disks()`. Mirroring doubles storage; this lets
  /// the fault bench check the doubled load is still balanced.
  std::vector<int64_t> PerDiskCountsWithMirrors() const;

  const ScaddarPolicy& policy() const { return *policy_; }

 private:
  const ScaddarPolicy* policy_;
};

}  // namespace scaddar

#endif  // SCADDAR_FAULTS_MIRROR_H_
