#include "faults/recovery.h"

#include <algorithm>

#include "core/mapper.h"

namespace scaddar {

StatusOr<RecoveryPlan> PlanMirrorRecovery(const ScaddarPolicy& policy) {
  const OpLog& log = policy.log();
  const Epoch j = log.num_ops();
  if (j < 1) {
    return FailedPreconditionError("no failure operation has been applied");
  }
  const ScalingOp& op = log.op(j);
  if (!op.is_remove() || op.removed_slots().size() != 1) {
    return FailedPreconditionError(
        "latest operation must be a single-slot removal (the failure)");
  }
  const int64_t n_prev = log.disks_after(j - 1);
  const int64_t n_cur = log.disks_after(j);
  if (n_prev < 2 || n_cur < 2) {
    return FailedPreconditionError("mirroring needs at least two disks");
  }
  const std::vector<PhysicalDiskId>& phys_prev = log.physical_disks_at(j - 1);
  const std::vector<PhysicalDiskId>& phys_cur = log.physical_disks_at(j);
  const PhysicalDiskId failed =
      phys_prev[static_cast<size_t>(op.removed_slots().front())];
  const int64_t offset_prev = MirroredPlacement::MirrorOffset(n_prev);
  const int64_t offset_cur = MirroredPlacement::MirrorOffset(n_cur);

  const Mapper mapper(&log);
  RecoveryPlan plan;
  for (const auto& [object, x0] : policy.objects_view()) {
    const Epoch start = policy.epoch_added(object);
    if (start >= j) {
      continue;  // Written after the failure; already fully redundant.
    }
    for (size_t i = 0; i < x0.size(); ++i) {
      ++plan.blocks_considered;
      const uint64_t x = x0[i];
      const DiskSlot old_p_slot = mapper.SlotBetween(x, start, j - 1);
      const DiskSlot old_m_slot = (old_p_slot + offset_prev) % n_prev;
      const PhysicalDiskId old_p = phys_prev[static_cast<size_t>(old_p_slot)];
      const PhysicalDiskId old_m = phys_prev[static_cast<size_t>(old_m_slot)];
      const DiskSlot new_p_slot = mapper.SlotBetween(x, start, j);
      const DiskSlot new_m_slot = (new_p_slot + offset_cur) % n_cur;
      const PhysicalDiskId new_p = phys_cur[static_cast<size_t>(new_p_slot)];
      const PhysicalDiskId new_m = phys_cur[static_cast<size_t>(new_m_slot)];

      plan.lost_primaries += old_p == failed ? 1 : 0;
      plan.lost_mirrors += old_m == failed ? 1 : 0;

      // Surviving replicas of this block (at least one: the two copies sit
      // on distinct disks).
      PhysicalDiskId survivors[2];
      int num_survivors = 0;
      if (old_p != failed) {
        survivors[num_survivors++] = old_p;
      }
      if (old_m != failed) {
        survivors[num_survivors++] = old_m;
      }
      SCADDAR_CHECK(num_survivors >= 1);

      const BlockRef ref{object, static_cast<BlockIndex>(i)};
      for (const auto& [target, is_primary] :
           {std::pair<PhysicalDiskId, bool>{new_p, true},
            std::pair<PhysicalDiskId, bool>{new_m, false}}) {
        bool already_there = false;
        for (int s = 0; s < num_survivors; ++s) {
          if (survivors[s] == target) {
            already_there = true;
            break;
          }
        }
        if (already_there) {
          continue;
        }
        // Prefer a source that is not also busy receiving this block.
        PhysicalDiskId source = survivors[0];
        if (num_survivors > 1 && survivors[0] == new_p && !is_primary) {
          source = survivors[1];
        }
        const bool copy_existed =
            (is_primary ? old_p : old_m) != failed;
        plan.relocations += copy_existed ? 1 : 0;
        plan.actions.push_back(RecoveryAction{
            .block = ref,
            .read_from = source,
            .write_to = target,
            .rebuilds_primary = is_primary,
        });
      }
    }
  }
  return plan;
}

int64_t RetryBackoff::DelayFor(int64_t attempt) const {
  const int64_t shift = std::max<int64_t>(attempt, 1) - 1;
  // 2^shift without overflow: saturate once the doubling passes the cap.
  int64_t delay = std::max<int64_t>(base_delay_rounds, 1);
  for (int64_t k = 0; k < shift && delay < max_delay_rounds; ++k) {
    delay *= 2;
  }
  return std::min(delay, std::max<int64_t>(max_delay_rounds, 1));
}

}  // namespace scaddar
