#ifndef SCADDAR_FAULTS_REPLICATION_H_
#define SCADDAR_FAULTS_REPLICATION_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "placement/scaddar_policy.h"
#include "util/statusor.h"

namespace scaddar {

/// R-way generalization of Section 6's fixed-offset mirroring: replica `r`
/// of a block lives at slot `(primary + floor(r*Nj/R)) mod Nj`. Offsets are
/// pure functions of the epoch's disk count, so — like the 2-way mirror —
/// no directory is needed and the replicas scale with the same op log.
///
/// With `Nj >= R` the R offsets are distinct, every replica is on a
/// different disk, and any `R-1` simultaneous disk failures leave each
/// block readable.
class ReplicatedPlacement {
 public:
  /// `replicas >= 2` (checked); `policy` borrowed (non-null, checked).
  ReplicatedPlacement(const ScaddarPolicy* policy, int64_t replicas);

  /// Slot offset of replica `r` (in [0, replicas)) at disk count `n`:
  /// `floor(r*n/replicas)`. Distinct across `r` whenever `n >= replicas`.
  static int64_t ReplicaOffset(int64_t n, int64_t replicas, int64_t r);

  /// Slot of replica `r`; replica 0 is the primary.
  DiskSlot ReplicaSlot(ObjectId object, BlockIndex block, int64_t r) const;

  /// Physical disk of replica `r`.
  PhysicalDiskId ReplicaOf(ObjectId object, BlockIndex block,
                           int64_t r) const;

  /// All replica disks of the block, primary first.
  std::vector<PhysicalDiskId> ReplicasOf(ObjectId object,
                                         BlockIndex block) const;

  /// The first healthy replica in priority order; NotFound if every
  /// replica's disk failed.
  StatusOr<PhysicalDiskId> LocateForRead(
      ObjectId object, BlockIndex block,
      const std::unordered_set<PhysicalDiskId>& failed) const;

  /// Per-disk block counts including every replica (R-fold storage).
  std::vector<int64_t> PerDiskCountsWithReplicas() const;

  /// `R - 1` when the current disk count keeps the offsets distinct.
  int64_t MaxFailuresTolerated() const;

  int64_t replicas() const { return replicas_; }

 private:
  const ScaddarPolicy* policy_;
  int64_t replicas_;
};

}  // namespace scaddar

#endif  // SCADDAR_FAULTS_REPLICATION_H_
