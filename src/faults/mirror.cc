#include "faults/mirror.h"

#include <algorithm>

namespace scaddar {

MirroredPlacement::MirroredPlacement(const ScaddarPolicy* policy)
    : policy_(policy) {
  SCADDAR_CHECK(policy != nullptr);
}

namespace {

int64_t MirrorOffsetImpl(int64_t n) {
  return std::clamp<int64_t>(n / 2, 1, n - 1);
}

}  // namespace

int64_t MirroredPlacement::MirrorOffset(int64_t n) {
  SCADDAR_CHECK(n >= 2);
  return MirrorOffsetImpl(n);
}

DiskSlot MirroredPlacement::PrimarySlot(ObjectId object,
                                        BlockIndex block) const {
  return policy_->LocateSlot(object, block);
}

DiskSlot MirroredPlacement::MirrorSlot(ObjectId object,
                                       BlockIndex block) const {
  const int64_t n = policy_->current_disks();
  SCADDAR_CHECK(n >= 2);
  return (PrimarySlot(object, block) + MirrorOffsetImpl(n)) % n;
}

PhysicalDiskId MirroredPlacement::PrimaryOf(ObjectId object,
                                            BlockIndex block) const {
  return policy_->Locate(object, block);
}

PhysicalDiskId MirroredPlacement::MirrorOf(ObjectId object,
                                           BlockIndex block) const {
  const DiskSlot slot = MirrorSlot(object, block);
  return policy_->log().physical_disks()[static_cast<size_t>(slot)];
}

StatusOr<PhysicalDiskId> MirroredPlacement::LocateForRead(
    ObjectId object, BlockIndex block,
    const std::unordered_set<PhysicalDiskId>& failed) const {
  const PhysicalDiskId primary = PrimaryOf(object, block);
  if (!failed.contains(primary)) {
    return primary;
  }
  const PhysicalDiskId mirror = MirrorOf(object, block);
  if (!failed.contains(mirror)) {
    return mirror;
  }
  return NotFoundError("both replicas are on failed disks");
}

std::vector<int64_t> MirroredPlacement::PerDiskCountsWithMirrors() const {
  const int64_t n = policy_->current_disks();
  std::vector<int64_t> counts(static_cast<size_t>(n), 0);
  for (const auto& [id, x0] : policy_->objects_view()) {
    for (size_t i = 0; i < x0.size(); ++i) {
      const auto block = static_cast<BlockIndex>(i);
      ++counts[static_cast<size_t>(PrimarySlot(id, block))];
      ++counts[static_cast<size_t>(MirrorSlot(id, block))];
    }
  }
  return counts;
}

}  // namespace scaddar
