#ifndef SCADDAR_FAULTS_RECOVERY_H_
#define SCADDAR_FAULTS_RECOVERY_H_

#include <cstdint>
#include <vector>

#include "faults/mirror.h"
#include "placement/scaddar_policy.h"
#include "util/statusor.h"

namespace scaddar {

/// One data transfer of a failure recovery: materialize a copy of `block`
/// on `write_to` by reading its surviving replica from `read_from`.
struct RecoveryAction {
  BlockRef block;
  PhysicalDiskId read_from = 0;
  PhysicalDiskId write_to = 0;
  /// True if this action rebuilds the block's primary copy, false for the
  /// mirror copy.
  bool rebuilds_primary = false;

  friend bool operator==(const RecoveryAction&,
                         const RecoveryAction&) = default;
};

/// The full plan to restore 2-way redundancy after an *unplanned* single
/// disk failure, treated as a SCADDAR removal operation (Section 6: with
/// mirroring at offset f(Nj), the failed disk's data survives on mirrors,
/// and the removal remap tells every lost copy where to go).
struct RecoveryPlan {
  int64_t blocks_considered = 0;
  /// Copies lost on the failed disk, by role.
  int64_t lost_primaries = 0;
  int64_t lost_mirrors = 0;
  /// Additional relocations forced by slot renumbering (a copy that
  /// survived but whose target disk changed).
  int64_t relocations = 0;
  std::vector<RecoveryAction> actions;

  int64_t num_actions() const {
    return static_cast<int64_t>(actions.size());
  }
};

/// Plans recovery for a mirrored SCADDAR deployment.
///
/// Contract: `policy` must ALREADY have the failure applied as its latest
/// operation — a removal of the single failed slot (callers translate the
/// failed physical disk to its pre-failure slot and apply
/// `ScalingOp::Remove({slot})` first; checked). The plan compares the
/// mirrored layout at the pre-failure epoch against the post-failure epoch
/// and emits one action per copy that must be (re)materialized, always
/// reading from a replica that survived the failure — never from the
/// failed disk.
///
/// With `MirroredPlacement` the primary and mirror are always on distinct
/// disks, so every block has a surviving source and the plan is complete.
StatusOr<RecoveryPlan> PlanMirrorRecovery(const ScaddarPolicy& policy);

/// Capped exponential backoff for transfers refused by transient I/O
/// errors: attempt k waits `base_delay_rounds * 2^(k-1)` rounds, capped at
/// `max_delay_rounds`. Rounds are the natural clock here — one round is one
/// block's playback time, and repair bandwidth is granted per round.
struct RetryBackoff {
  int64_t base_delay_rounds = 1;
  int64_t max_delay_rounds = 8;

  /// Rounds to wait before retry number `attempt` (1-based; clamped >= 1).
  int64_t DelayFor(int64_t attempt) const;
};

}  // namespace scaddar

#endif  // SCADDAR_FAULTS_RECOVERY_H_
