#include "faults/replication.h"

namespace scaddar {

ReplicatedPlacement::ReplicatedPlacement(const ScaddarPolicy* policy,
                                         int64_t replicas)
    : policy_(policy), replicas_(replicas) {
  SCADDAR_CHECK(policy != nullptr);
  SCADDAR_CHECK(replicas >= 2);
}

int64_t ReplicatedPlacement::ReplicaOffset(int64_t n, int64_t replicas,
                                           int64_t r) {
  SCADDAR_CHECK(n >= 1);
  SCADDAR_CHECK(replicas >= 2);
  SCADDAR_CHECK(r >= 0 && r < replicas);
  return r * n / replicas;
}

DiskSlot ReplicatedPlacement::ReplicaSlot(ObjectId object, BlockIndex block,
                                          int64_t r) const {
  const int64_t n = policy_->current_disks();
  const DiskSlot primary = policy_->LocateSlot(object, block);
  return (primary + ReplicaOffset(n, replicas_, r)) % n;
}

PhysicalDiskId ReplicatedPlacement::ReplicaOf(ObjectId object,
                                              BlockIndex block,
                                              int64_t r) const {
  return policy_->log()
      .physical_disks()[static_cast<size_t>(ReplicaSlot(object, block, r))];
}

std::vector<PhysicalDiskId> ReplicatedPlacement::ReplicasOf(
    ObjectId object, BlockIndex block) const {
  std::vector<PhysicalDiskId> disks;
  disks.reserve(static_cast<size_t>(replicas_));
  for (int64_t r = 0; r < replicas_; ++r) {
    disks.push_back(ReplicaOf(object, block, r));
  }
  return disks;
}

StatusOr<PhysicalDiskId> ReplicatedPlacement::LocateForRead(
    ObjectId object, BlockIndex block,
    const std::unordered_set<PhysicalDiskId>& failed) const {
  for (int64_t r = 0; r < replicas_; ++r) {
    const PhysicalDiskId disk = ReplicaOf(object, block, r);
    if (!failed.contains(disk)) {
      return disk;
    }
  }
  return NotFoundError("every replica is on a failed disk");
}

std::vector<int64_t> ReplicatedPlacement::PerDiskCountsWithReplicas() const {
  const int64_t n = policy_->current_disks();
  std::vector<int64_t> counts(static_cast<size_t>(n), 0);
  for (const auto& [object, x0] : policy_->objects_view()) {
    for (size_t i = 0; i < x0.size(); ++i) {
      for (int64_t r = 0; r < replicas_; ++r) {
        ++counts[static_cast<size_t>(
            ReplicaSlot(object, static_cast<BlockIndex>(i), r))];
      }
    }
  }
  return counts;
}

int64_t ReplicatedPlacement::MaxFailuresTolerated() const {
  return policy_->current_disks() >= replicas_ ? replicas_ - 1 : 0;
}

}  // namespace scaddar
