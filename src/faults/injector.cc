#include "faults/injector.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "random/distributions.h"

namespace scaddar {

namespace {

constexpr std::string_view kHeader = "faults-v1";

const char* KindToken(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kDiskFail:
      return "fail";
    case FaultKind::kTransientError:
      return "transient";
    case FaultKind::kHook:
      return "hook";
    case FaultKind::kBackendError:
      return "backend";
    case FaultKind::kSnapshotCrash:
      return "snapcrash";
    case FaultKind::kSnapshotCorrupt:
      return "snapcorrupt";
  }
  return "?";
}

const char* BackendKindToken(BackendFaultKind kind) {
  return kind == BackendFaultKind::kShort ? "short" : "eio";
}

StatusOr<int64_t> ParseInt(std::string_view token) {
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return InvalidArgumentError("malformed integer in fault schedule");
  }
  return value;
}

StatusOr<double> ParseDouble(std::string_view token) {
  const std::string copy(token);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) {
    return InvalidArgumentError("malformed probability in fault schedule");
  }
  return value;
}

std::vector<std::string_view> Split(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') {
      ++pos;
    }
    const size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') {
      ++pos;
    }
    if (pos > start) {
      tokens.push_back(line.substr(start, pos - start));
    }
  }
  return tokens;
}

}  // namespace

FaultSchedule FaultSchedule::Random(uint64_t seed,
                                    const RandomScheduleOptions& options) {
  auto prng = MakePrng(PrngKind::kSplitMix64, seed);
  FaultSchedule schedule;
  for (int64_t i = 0; i < options.crashes; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kCrash;
    event.round = -1;
    event.move = static_cast<int64_t>(UniformUint64(
        *prng, static_cast<uint64_t>(std::max<int64_t>(
                   options.max_crash_move, 1))));
    event.phase = static_cast<MovePhase>(
        UniformUint64(*prng, static_cast<uint64_t>(kNumMovePhases)));
    schedule.Add(event);
  }
  int64_t next_round = 1;
  for (int64_t i = 0; i < options.disk_failures; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kDiskFail;
    event.round =
        next_round + static_cast<int64_t>(UniformUint64(
                         *prng, static_cast<uint64_t>(std::max<int64_t>(
                                    options.max_round, 2))));
    next_round = event.round + options.failure_spacing;
    event.disk = static_cast<PhysicalDiskId>(UniformUint64(
        *prng,
        static_cast<uint64_t>(std::max<int64_t>(options.max_disk_id, 1))));
    schedule.Add(event);
  }
  if (options.transient_probability > 0.0) {
    FaultEvent event;
    event.kind = FaultKind::kTransientError;
    event.round = -1;
    event.disk = -1;
    event.probability = options.transient_probability;
    schedule.Add(event);
  }
  return schedule;
}

std::string FaultSchedule::Serialize() const {
  std::string out(kHeader);
  out += '\n';
  char buffer[160];
  for (const FaultEvent& event : events_) {
    switch (event.kind) {
      case FaultKind::kCrash:
        std::snprintf(buffer, sizeof(buffer), "crash %lld %lld %d\n",
                      static_cast<long long>(event.round),
                      static_cast<long long>(event.move),
                      static_cast<int>(event.phase));
        break;
      case FaultKind::kDiskFail:
        std::snprintf(buffer, sizeof(buffer), "fail %lld %lld\n",
                      static_cast<long long>(event.round),
                      static_cast<long long>(event.disk));
        break;
      case FaultKind::kTransientError:
        std::snprintf(buffer, sizeof(buffer), "transient %lld %lld %.17g\n",
                      static_cast<long long>(event.round),
                      static_cast<long long>(event.disk), event.probability);
        break;
      case FaultKind::kHook:
        std::snprintf(buffer, sizeof(buffer), "hook %lld %lld\n",
                      static_cast<long long>(event.round),
                      static_cast<long long>(event.move));
        break;
      case FaultKind::kBackendError:
        std::snprintf(buffer, sizeof(buffer), "backend %lld %lld %s %.17g\n",
                      static_cast<long long>(event.round),
                      static_cast<long long>(event.disk),
                      BackendKindToken(event.backend), event.probability);
        break;
      case FaultKind::kSnapshotCrash:
        std::snprintf(buffer, sizeof(buffer), "snapcrash %lld %d\n",
                      static_cast<long long>(event.move),
                      static_cast<int>(event.snapshot_phase));
        break;
      case FaultKind::kSnapshotCorrupt:
        std::snprintf(buffer, sizeof(buffer), "snapcorrupt %lld %lld\n",
                      static_cast<long long>(event.move),
                      static_cast<long long>(event.disk));
        break;
    }
    out += buffer;
  }
  return out;
}

StatusOr<FaultSchedule> FaultSchedule::Deserialize(std::string_view text) {
  FaultSchedule schedule;
  bool header_seen = false;
  std::string_view rest = text;
  while (!rest.empty()) {
    const size_t eol = rest.find('\n');
    std::string_view line = rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view()
                                         : rest.substr(eol + 1);
    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    const std::vector<std::string_view> tokens = Split(line);
    if (tokens.empty()) {
      continue;
    }
    if (!header_seen) {
      if (tokens.size() != 1 || tokens[0] != kHeader) {
        return InvalidArgumentError("unrecognized fault schedule header");
      }
      header_seen = true;
      continue;
    }
    FaultEvent event;
    if (tokens[0] == "crash" && tokens.size() == 4) {
      event.kind = FaultKind::kCrash;
      SCADDAR_ASSIGN_OR_RETURN(event.round, ParseInt(tokens[1]));
      SCADDAR_ASSIGN_OR_RETURN(event.move, ParseInt(tokens[2]));
      SCADDAR_ASSIGN_OR_RETURN(const int64_t phase, ParseInt(tokens[3]));
      if (phase < 0 || phase >= kNumMovePhases) {
        return InvalidArgumentError("crash phase out of range");
      }
      event.phase = static_cast<MovePhase>(phase);
    } else if (tokens[0] == "fail" && tokens.size() == 3) {
      event.kind = FaultKind::kDiskFail;
      SCADDAR_ASSIGN_OR_RETURN(event.round, ParseInt(tokens[1]));
      SCADDAR_ASSIGN_OR_RETURN(event.disk, ParseInt(tokens[2]));
    } else if (tokens[0] == "transient" && tokens.size() == 4) {
      event.kind = FaultKind::kTransientError;
      SCADDAR_ASSIGN_OR_RETURN(event.round, ParseInt(tokens[1]));
      SCADDAR_ASSIGN_OR_RETURN(event.disk, ParseInt(tokens[2]));
      SCADDAR_ASSIGN_OR_RETURN(event.probability, ParseDouble(tokens[3]));
      // Negated so NaN (which fails every comparison) is also rejected.
      if (!(event.probability >= 0.0 && event.probability <= 1.0)) {
        return InvalidArgumentError("transient probability outside [0, 1]");
      }
    } else if (tokens[0] == "hook" && tokens.size() == 3) {
      event.kind = FaultKind::kHook;
      SCADDAR_ASSIGN_OR_RETURN(event.round, ParseInt(tokens[1]));
      SCADDAR_ASSIGN_OR_RETURN(event.move, ParseInt(tokens[2]));
    } else if (tokens[0] == "backend" && tokens.size() == 5) {
      event.kind = FaultKind::kBackendError;
      SCADDAR_ASSIGN_OR_RETURN(event.round, ParseInt(tokens[1]));
      SCADDAR_ASSIGN_OR_RETURN(event.disk, ParseInt(tokens[2]));
      if (tokens[3] == "eio") {
        event.backend = BackendFaultKind::kEio;
      } else if (tokens[3] == "short") {
        event.backend = BackendFaultKind::kShort;
      } else {
        return InvalidArgumentError("unrecognized backend fault kind");
      }
      SCADDAR_ASSIGN_OR_RETURN(event.probability, ParseDouble(tokens[4]));
      if (!(event.probability >= 0.0 && event.probability <= 1.0)) {
        return InvalidArgumentError("backend probability outside [0, 1]");
      }
    } else if (tokens[0] == "snapcrash" && tokens.size() == 3) {
      event.kind = FaultKind::kSnapshotCrash;
      SCADDAR_ASSIGN_OR_RETURN(event.move, ParseInt(tokens[1]));
      SCADDAR_ASSIGN_OR_RETURN(const int64_t phase, ParseInt(tokens[2]));
      if (phase < 0 || phase >= kNumSnapshotPhases) {
        return InvalidArgumentError("snapshot crash phase out of range");
      }
      event.snapshot_phase = static_cast<SnapshotPhase>(phase);
    } else if (tokens[0] == "snapcorrupt" && tokens.size() == 3) {
      event.kind = FaultKind::kSnapshotCorrupt;
      SCADDAR_ASSIGN_OR_RETURN(event.move, ParseInt(tokens[1]));
      SCADDAR_ASSIGN_OR_RETURN(event.disk, ParseInt(tokens[2]));
    } else {
      return InvalidArgumentError("unrecognized fault schedule line");
    }
    schedule.Add(event);
  }
  if (!header_seen) {
    return InvalidArgumentError("empty fault schedule");
  }
  return schedule;
}

FaultInjector::FaultInjector(FaultSchedule schedule, uint64_t seed)
    : schedule_(std::move(schedule)),
      fired_(schedule_.events().size(), false),
      prng_(MakePrng(PrngKind::kSplitMix64, seed ^ 0xfa17ull)) {}

void FaultInjector::BeginRound(int64_t round) { round_ = round; }

std::vector<PhysicalDiskId> FaultInjector::TakeDiskFailures() {
  std::vector<PhysicalDiskId> disks;
  const std::vector<FaultEvent>& events = schedule_.events();
  for (size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& event = events[i];
    if (event.kind != FaultKind::kDiskFail || fired_[i] ||
        !RoundMatches(event)) {
      continue;
    }
    fired_[i] = true;
    ++disk_failures_fired_;
    disks.push_back(event.disk);
  }
  return disks;
}

void FaultInjector::BeginMove() {
  ++move_;
  const std::vector<FaultEvent>& events = schedule_.events();
  for (size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& event = events[i];
    if (event.kind != FaultKind::kHook || fired_[i] || !RoundMatches(event) ||
        event.move != move_) {
      continue;
    }
    fired_[i] = true;
    ++hooks_fired_;
    if (hook_) {
      hook_();
    }
  }
}

bool FaultInjector::CrashAt(MovePhase phase) {
  const std::vector<FaultEvent>& events = schedule_.events();
  for (size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& event = events[i];
    if (event.kind != FaultKind::kCrash || fired_[i] || !RoundMatches(event) ||
        event.move != move_ || event.phase != phase) {
      continue;
    }
    fired_[i] = true;
    ++crashes_fired_;
    return true;
  }
  return false;
}

bool FaultInjector::TransientHits(PhysicalDiskId a, PhysicalDiskId b) {
  const std::vector<FaultEvent>& events = schedule_.events();
  for (const FaultEvent& event : events) {
    if (event.kind != FaultKind::kTransientError || !RoundMatches(event)) {
      continue;
    }
    if (event.disk >= 0 && event.disk != a && event.disk != b) {
      continue;
    }
    if (Bernoulli(*prng_, event.probability)) {
      ++transient_errors_fired_;
      return true;
    }
  }
  return false;
}

bool FaultInjector::FailTransfer(PhysicalDiskId from, PhysicalDiskId to) {
  return TransientHits(from, to);
}

bool FaultInjector::FailRead(PhysicalDiskId disk) {
  return TransientHits(disk, disk);
}

void FaultInjector::BeginSnapshot() { ++snapshot_; }

bool FaultInjector::CrashAtSnapshot(SnapshotPhase phase) {
  const std::vector<FaultEvent>& events = schedule_.events();
  for (size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& event = events[i];
    if (event.kind != FaultKind::kSnapshotCrash || fired_[i] ||
        event.move != snapshot_ || event.snapshot_phase != phase) {
      continue;
    }
    fired_[i] = true;
    ++snapshot_crashes_fired_;
    return true;
  }
  return false;
}

bool FaultInjector::CorruptSnapshotAt(int64_t location) {
  const std::vector<FaultEvent>& events = schedule_.events();
  for (size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& event = events[i];
    if (event.kind != FaultKind::kSnapshotCorrupt || fired_[i] ||
        event.move != snapshot_ ||
        (event.disk >= 0 && event.disk != location)) {
      continue;
    }
    fired_[i] = true;
    ++snapshot_corruptions_fired_;
    return true;
  }
  return false;
}

std::optional<BackendFaultKind> FaultInjector::NextBackendFault(
    PhysicalDiskId disk) {
  const std::vector<FaultEvent>& events = schedule_.events();
  for (const FaultEvent& event : events) {
    if (event.kind != FaultKind::kBackendError || !RoundMatches(event)) {
      continue;
    }
    if (event.disk >= 0 && event.disk != disk) {
      continue;
    }
    if (Bernoulli(*prng_, event.probability)) {
      ++backend_faults_fired_;
      return event.backend;
    }
  }
  return std::nullopt;
}

}  // namespace scaddar
