#include "stats/load_metrics.h"

#include <cmath>

#include "stats/accumulator.h"
#include "util/status.h"

namespace scaddar {

LoadMetrics ComputeLoadMetrics(const std::vector<int64_t>& per_disk_counts) {
  SCADDAR_CHECK(!per_disk_counts.empty());
  Accumulator acc;
  int64_t min_load = per_disk_counts.front();
  int64_t max_load = per_disk_counts.front();
  int64_t total = 0;
  for (const int64_t count : per_disk_counts) {
    SCADDAR_CHECK(count >= 0);
    acc.Add(static_cast<double>(count));
    min_load = count < min_load ? count : min_load;
    max_load = count > max_load ? count : max_load;
    total += count;
  }
  LoadMetrics metrics;
  metrics.num_disks = static_cast<int64_t>(per_disk_counts.size());
  metrics.total_blocks = total;
  metrics.mean = acc.mean();
  metrics.stddev = acc.stddev();
  metrics.coefficient_of_variation = acc.coefficient_of_variation();
  metrics.min_load = min_load;
  metrics.max_load = max_load;
  metrics.unfairness =
      min_load == 0
          ? HUGE_VAL
          : static_cast<double>(max_load) / static_cast<double>(min_load) -
                1.0;
  return metrics;
}

}  // namespace scaddar
