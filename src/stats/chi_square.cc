#include "stats/chi_square.h"

#include <cmath>

#include "util/status.h"

namespace scaddar {

namespace {

double NormalSurvival(double z) {
  return 0.5 * std::erfc(z / std::sqrt(2.0));
}

}  // namespace

double ChiSquareSurvival(double statistic, int64_t df) {
  SCADDAR_CHECK(df >= 1);
  if (statistic <= 0.0) {
    return 1.0;
  }
  // Wilson-Hilferty: (X/df)^(1/3) is approximately normal with mean
  // 1 - 2/(9 df) and variance 2/(9 df).
  const double n = static_cast<double>(df);
  const double t = std::cbrt(statistic / n);
  const double mean = 1.0 - 2.0 / (9.0 * n);
  const double sd = std::sqrt(2.0 / (9.0 * n));
  return NormalSurvival((t - mean) / sd);
}

ChiSquareResult ChiSquareAgainst(const std::vector<int64_t>& observed,
                                 const std::vector<double>& expected) {
  SCADDAR_CHECK(observed.size() == expected.size());
  SCADDAR_CHECK(observed.size() >= 2);
  int64_t total = 0;
  double weight_total = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    SCADDAR_CHECK(observed[i] >= 0);
    SCADDAR_CHECK(expected[i] > 0.0);
    total += observed[i];
    weight_total += expected[i];
  }
  SCADDAR_CHECK(total > 0);
  ChiSquareResult result;
  result.degrees_of_freedom = static_cast<int64_t>(observed.size()) - 1;
  for (size_t i = 0; i < observed.size(); ++i) {
    const double exp_count =
        static_cast<double>(total) * expected[i] / weight_total;
    const double diff = static_cast<double>(observed[i]) - exp_count;
    result.statistic += diff * diff / exp_count;
  }
  result.p_value = ChiSquareSurvival(result.statistic,
                                     result.degrees_of_freedom);
  return result;
}

ChiSquareResult ChiSquareUniform(const std::vector<int64_t>& observed) {
  const std::vector<double> expected(observed.size(), 1.0);
  return ChiSquareAgainst(observed, expected);
}

}  // namespace scaddar
