#ifndef SCADDAR_STATS_CHI_SQUARE_H_
#define SCADDAR_STATS_CHI_SQUARE_H_

#include <cstdint>
#include <vector>

namespace scaddar {

/// Result of a chi-square goodness-of-fit test against a uniform (or given)
/// expectation.
struct ChiSquareResult {
  double statistic = 0.0;     // Sum over cells of (obs - exp)^2 / exp.
  int64_t degrees_of_freedom = 0;
  double p_value = 0.0;       // P(X^2 >= statistic) under H0.

  /// True iff the test does NOT reject uniformity at significance `alpha`.
  bool IsUniform(double alpha) const { return p_value >= alpha; }
};

/// Chi-square test of `observed` counts against a uniform distribution over
/// the cells. Requires at least 2 cells and a positive total.
ChiSquareResult ChiSquareUniform(const std::vector<int64_t>& observed);

/// Chi-square test against arbitrary positive `expected` weights (need not
/// be normalized). Sizes must match; every expected weight must be > 0.
ChiSquareResult ChiSquareAgainst(const std::vector<int64_t>& observed,
                                 const std::vector<double>& expected);

/// Upper-tail probability of the chi-square distribution with `df` degrees
/// of freedom (Wilson-Hilferty cube-root normal approximation; accurate to a
/// few 1e-3 for df >= 3, adequate for pass/fail tests at alpha in
/// [1e-4, 0.1]).
double ChiSquareSurvival(double statistic, int64_t df);

}  // namespace scaddar

#endif  // SCADDAR_STATS_CHI_SQUARE_H_
