#ifndef SCADDAR_STATS_RANDTESTS_H_
#define SCADDAR_STATS_RANDTESTS_H_

#include <cstdint>
#include <vector>

namespace scaddar {

/// Statistical quality tests for the `p_r(s)` substrate (FIPS 140-2 /
/// NIST-style, simplified). The paper's whole construction assumes the
/// generator's bits are "truly random" (Section 4.3); these tests give the
/// repository teeth to reject a generator that is not.

/// Result of a single binary hypothesis test.
struct RandTestResult {
  double statistic = 0.0;
  double p_value = 0.0;

  bool Passes(double alpha) const { return p_value >= alpha; }
};

/// Monobit (frequency) test: the fraction of 1 bits across `words` (each
/// contributing `bits_per_word` low bits) should be 1/2.
RandTestResult MonobitTest(const std::vector<uint64_t>& words,
                           int bits_per_word);

/// Runs test (Wald-Wolfowitz on the bit stream): the number of maximal
/// runs of equal bits should match the expectation for i.i.d. fair bits.
/// Requires the monobit test to be roughly satisfied to be meaningful.
RandTestResult RunsTest(const std::vector<uint64_t>& words,
                        int bits_per_word);

/// Serial correlation of consecutive words (lag-1 Pearson coefficient of
/// the word values); near 0 for independent outputs. The p-value uses the
/// normal approximation corr ~ N(0, 1/n).
RandTestResult SerialCorrelationTest(const std::vector<uint64_t>& words);

}  // namespace scaddar

#endif  // SCADDAR_STATS_RANDTESTS_H_
