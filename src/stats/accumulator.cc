#include "stats/accumulator.h"

#include <algorithm>
#include <cmath>

namespace scaddar {

void Accumulator::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void Accumulator::Merge(const Accumulator& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const int64_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.count_) /
           static_cast<double>(total);
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

double Accumulator::variance() const {
  return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double Accumulator::sample_variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::coefficient_of_variation() const {
  return mean() == 0.0 ? 0.0 : stddev() / mean();
}

}  // namespace scaddar
