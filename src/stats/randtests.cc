#include "stats/randtests.h"

#include <cmath>

#include "util/status.h"

namespace scaddar {

namespace {

double TwoSidedNormalP(double z) { return std::erfc(std::fabs(z) / std::sqrt(2.0)); }

}  // namespace

RandTestResult MonobitTest(const std::vector<uint64_t>& words,
                           int bits_per_word) {
  SCADDAR_CHECK(!words.empty());
  SCADDAR_CHECK(bits_per_word >= 1 && bits_per_word <= 64);
  int64_t ones = 0;
  for (const uint64_t word : words) {
    const uint64_t masked =
        bits_per_word == 64 ? word : word & ((uint64_t{1} << bits_per_word) - 1);
    ones += __builtin_popcountll(masked);
  }
  const double n =
      static_cast<double>(words.size()) * static_cast<double>(bits_per_word);
  // Under H0, ones ~ Binomial(n, 1/2); z = (2*ones - n)/sqrt(n).
  RandTestResult result;
  result.statistic = (2.0 * static_cast<double>(ones) - n) / std::sqrt(n);
  result.p_value = TwoSidedNormalP(result.statistic);
  return result;
}

RandTestResult RunsTest(const std::vector<uint64_t>& words,
                        int bits_per_word) {
  SCADDAR_CHECK(!words.empty());
  SCADDAR_CHECK(bits_per_word >= 1 && bits_per_word <= 64);
  int64_t n = 0;
  int64_t ones = 0;
  int64_t runs = 0;
  int previous_bit = -1;
  for (const uint64_t word : words) {
    for (int b = 0; b < bits_per_word; ++b) {
      const int bit = static_cast<int>((word >> b) & 1u);
      ++n;
      ones += bit;
      if (bit != previous_bit) {
        ++runs;
        previous_bit = bit;
      }
    }
  }
  const double pi = static_cast<double>(ones) / static_cast<double>(n);
  RandTestResult result;
  // NIST SP800-22 runs test statistic.
  const double expected = 2.0 * static_cast<double>(n) * pi * (1.0 - pi);
  if (expected == 0.0) {
    result.statistic = HUGE_VAL;
    result.p_value = 0.0;
    return result;
  }
  result.statistic =
      (static_cast<double>(runs) - expected - 1.0) /
      (2.0 * std::sqrt(2.0 * static_cast<double>(n)) * pi * (1.0 - pi));
  result.p_value = TwoSidedNormalP(result.statistic);
  return result;
}

RandTestResult SerialCorrelationTest(const std::vector<uint64_t>& words) {
  SCADDAR_CHECK(words.size() >= 3);
  const size_t n = words.size() - 1;
  // Pearson correlation of (w_i, w_{i+1}) on values scaled to [0, 1].
  double sum_x = 0.0;
  double sum_y = 0.0;
  double sum_xx = 0.0;
  double sum_yy = 0.0;
  double sum_xy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(words[i]) * 0x1.0p-64;
    const double y = static_cast<double>(words[i + 1]) * 0x1.0p-64;
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_yy += y * y;
    sum_xy += x * y;
  }
  const double nd = static_cast<double>(n);
  const double cov = sum_xy / nd - (sum_x / nd) * (sum_y / nd);
  const double var_x = sum_xx / nd - (sum_x / nd) * (sum_x / nd);
  const double var_y = sum_yy / nd - (sum_y / nd) * (sum_y / nd);
  RandTestResult result;
  if (var_x <= 0.0 || var_y <= 0.0) {
    result.statistic = HUGE_VAL;
    result.p_value = 0.0;
    return result;
  }
  const double corr = cov / std::sqrt(var_x * var_y);
  result.statistic = corr * std::sqrt(nd);  // corr ~ N(0, 1/n) under H0.
  result.p_value = TwoSidedNormalP(result.statistic);
  return result;
}

}  // namespace scaddar
