#include "stats/movement.h"

#include <cmath>

#include "util/status.h"

namespace scaddar {

double TheoreticalMoveFraction(int64_t n_prev, int64_t n_cur) {
  SCADDAR_CHECK(n_prev > 0);
  SCADDAR_CHECK(n_cur > 0);
  if (n_cur > n_prev) {
    return static_cast<double>(n_cur - n_prev) / static_cast<double>(n_cur);
  }
  return static_cast<double>(n_prev - n_cur) / static_cast<double>(n_prev);
}

MovementStats CompareAssignments(const std::vector<int64_t>& before,
                                 const std::vector<int64_t>& after,
                                 int64_t n_prev, int64_t n_cur) {
  SCADDAR_CHECK(before.size() == after.size());
  MovementStats stats;
  stats.total_blocks = static_cast<int64_t>(before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    if (before[i] != after[i]) {
      ++stats.moved_blocks;
    }
  }
  stats.moved_fraction =
      stats.total_blocks == 0
          ? 0.0
          : static_cast<double>(stats.moved_blocks) /
                static_cast<double>(stats.total_blocks);
  stats.theoretical_fraction = TheoreticalMoveFraction(n_prev, n_cur);
  if (stats.theoretical_fraction == 0.0) {
    stats.overhead_ratio = stats.moved_fraction == 0.0 ? 1.0 : HUGE_VAL;
  } else {
    stats.overhead_ratio = stats.moved_fraction / stats.theoretical_fraction;
  }
  return stats;
}

}  // namespace scaddar
