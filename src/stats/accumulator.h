#ifndef SCADDAR_STATS_ACCUMULATOR_H_
#define SCADDAR_STATS_ACCUMULATOR_H_

#include <cstdint>

namespace scaddar {

/// Streaming mean/variance accumulator (Welford's algorithm, numerically
/// stable). Drives the paper's Section 5 metric: the coefficient of
/// variation of blocks per disk ("standard deviation divided by the average
/// number of blocks across all disks").
class Accumulator {
 public:
  Accumulator() = default;

  /// Adds one observation.
  void Add(double value);

  /// Merges another accumulator (parallel Welford combine).
  void Merge(const Accumulator& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Population variance (divides by n). Returns 0 for fewer than one
  /// observation.
  double variance() const;

  /// Sample variance (divides by n-1). Returns 0 for fewer than two
  /// observations.
  double sample_variance() const;

  /// Population standard deviation.
  double stddev() const;

  /// Coefficient of variation: stddev / mean. Returns 0 when the mean is 0.
  double coefficient_of_variation() const;

  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace scaddar

#endif  // SCADDAR_STATS_ACCUMULATOR_H_
