#ifndef SCADDAR_STATS_LOAD_METRICS_H_
#define SCADDAR_STATS_LOAD_METRICS_H_

#include <cstdint>
#include <vector>

namespace scaddar {

/// Summary of how evenly a set of blocks is spread over disks. Captures the
/// paper's RO2 metrics: the coefficient of variation of blocks per disk
/// (Section 5) and the *measured* unfairness coefficient, defined as
/// `largest load / smallest load - 1` (Section 4.3 defines the expected-load
/// version; over many trials the measured value estimates it).
struct LoadMetrics {
  int64_t num_disks = 0;
  int64_t total_blocks = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double coefficient_of_variation = 0.0;
  int64_t min_load = 0;
  int64_t max_load = 0;
  /// max_load / min_load - 1; infinity (HUGE_VAL) when min_load == 0.
  double unfairness = 0.0;
};

/// Computes load metrics from per-disk block counts (must be non-empty).
LoadMetrics ComputeLoadMetrics(const std::vector<int64_t>& per_disk_counts);

}  // namespace scaddar

#endif  // SCADDAR_STATS_LOAD_METRICS_H_
