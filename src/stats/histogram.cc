#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

namespace scaddar {

Histogram::Histogram(double lo, double hi, int buckets) : lo_(lo), hi_(hi) {
  SCADDAR_CHECK(buckets > 0);
  SCADDAR_CHECK(lo < hi);
  bucket_width_ = (hi - lo) / buckets;
  counts_.assign(static_cast<size_t>(buckets), 0);
}

void Histogram::Add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  auto index = static_cast<size_t>((value - lo_) / bucket_width_);
  index = std::min(index, counts_.size() - 1);
  ++counts_[index];
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) {
    return lo_;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<int64_t>(
      std::ceil(q * static_cast<double>(total_)));
  int64_t seen = underflow_;
  if (seen >= target) {
    return lo_;
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) {
      return lo_ + (static_cast<double>(i) + 0.5) * bucket_width_;
    }
  }
  return hi_;
}

std::string Histogram::ToAscii(int width) const {
  SCADDAR_CHECK(width > 0);
  int64_t peak = 1;
  for (const int64_t count : counts_) {
    peak = std::max(peak, count);
  }
  std::string out;
  char line[160];
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double bucket_lo = lo_ + static_cast<double>(i) * bucket_width_;
    const int bar = static_cast<int>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) * width);
    std::snprintf(line, sizeof(line), "[%10.3f) %8lld |", bucket_lo,
                  static_cast<long long>(counts_[i]));
    out += line;
    out.append(static_cast<size_t>(bar), '#');
    out += '\n';
  }
  return out;
}

CountTally::CountTally(int64_t n) {
  SCADDAR_CHECK(n >= 0);
  counts_.assign(static_cast<size_t>(n), 0);
}

void CountTally::Add(int64_t index, int64_t delta) {
  SCADDAR_CHECK(index >= 0 && index < size());
  counts_[static_cast<size_t>(index)] += delta;
  SCADDAR_CHECK(counts_[static_cast<size_t>(index)] >= 0);
  total_ += delta;
}

int64_t CountTally::at(int64_t index) const {
  SCADDAR_CHECK(index >= 0 && index < size());
  return counts_[static_cast<size_t>(index)];
}

void CountTally::Resize(int64_t n) {
  SCADDAR_CHECK(n >= 0);
  for (size_t i = static_cast<size_t>(n); i < counts_.size(); ++i) {
    SCADDAR_CHECK(counts_[i] == 0);
  }
  counts_.resize(static_cast<size_t>(n), 0);
}

}  // namespace scaddar
