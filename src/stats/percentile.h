#ifndef SCADDAR_STATS_PERCENTILE_H_
#define SCADDAR_STATS_PERCENTILE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace scaddar {

/// Nearest-rank percentile over a copy of `values` (`p` in [0, 1]); 0 on an
/// empty sample. Shared by the startup-latency reports (p99/p999) in the
/// scenario summaries and the serving/cluster benches — one definition so
/// every report means the same thing.
inline int64_t PercentileOf(std::vector<int64_t> values, double p) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  const auto index = static_cast<size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

}  // namespace scaddar

#endif  // SCADDAR_STATS_PERCENTILE_H_
