#ifndef SCADDAR_STATS_MOVEMENT_H_
#define SCADDAR_STATS_MOVEMENT_H_

#include <cstdint>
#include <vector>

namespace scaddar {

/// Block-movement accounting for one scaling operation — the paper's RO1.
/// `theoretical_fraction` is the minimum moving fraction `z_j` from
/// Definition 3.4 Eq. 1; `moved_fraction` is what a policy actually moved.
struct MovementStats {
  int64_t total_blocks = 0;
  int64_t moved_blocks = 0;
  double moved_fraction = 0.0;
  double theoretical_fraction = 0.0;
  /// moved_fraction / theoretical_fraction; 1.0 is optimal, values > 1 mean
  /// excess movement. Defined as infinity when the theoretical minimum is 0
  /// but blocks moved anyway, and 1.0 when both are 0.
  double overhead_ratio = 1.0;
};

/// The paper's Eq. 1: the minimum fraction of blocks that must move when the
/// disk count changes from `n_prev` to `n_cur` (both > 0, checked).
double TheoreticalMoveFraction(int64_t n_prev, int64_t n_cur);

/// Compares two per-block disk assignments of equal length and tallies
/// movement against the theoretical minimum for `n_prev -> n_cur`.
MovementStats CompareAssignments(const std::vector<int64_t>& before,
                                 const std::vector<int64_t>& after,
                                 int64_t n_prev, int64_t n_cur);

}  // namespace scaddar

#endif  // SCADDAR_STATS_MOVEMENT_H_
