#ifndef SCADDAR_STATS_HISTOGRAM_H_
#define SCADDAR_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace scaddar {

/// Fixed-width bucket histogram over [lo, hi); values outside the range go
/// to saturating under/overflow buckets. Used for latency and queue-depth
/// reporting in the server simulation and for bench output.
class Histogram {
 public:
  /// `buckets` > 0 and `lo < hi` (checked).
  Histogram(double lo, double hi, int buckets);

  void Add(double value);

  int64_t total_count() const { return total_; }
  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }
  const std::vector<int64_t>& buckets() const { return counts_; }

  /// Approximate quantile (q in [0, 1]) from bucket midpoints.
  double Quantile(double q) const;

  /// Multi-line ASCII rendering for bench output.
  std::string ToAscii(int width) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<int64_t> counts_;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  int64_t total_ = 0;
};

/// Exact counter over small integer domains `[0, n)`: the per-disk block
/// count tally used throughout the placement experiments.
class CountTally {
 public:
  explicit CountTally(int64_t n);

  void Add(int64_t index, int64_t delta = 1);

  int64_t at(int64_t index) const;
  int64_t size() const { return static_cast<int64_t>(counts_.size()); }
  int64_t total() const { return total_; }
  const std::vector<int64_t>& counts() const { return counts_; }

  /// Resizes the domain (new slots start at zero); shrinking requires the
  /// dropped slots to be empty (checked).
  void Resize(int64_t n);

 private:
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace scaddar

#endif  // SCADDAR_STATS_HISTOGRAM_H_
