#ifndef SCADDAR_UTIL_SIMD_AVX512_H_
#define SCADDAR_UTIL_SIMD_AVX512_H_

// 8x64-bit AVX-512 lane primitives for the vector kernel backends
// (core/compiled_log_simd512.cc).
//
// Include ONLY from translation units compiled with -mavx512f -mavx512dq:
// the helpers use the intrinsics unconditionally, and the surrounding build
// adds the flags per-file so the rest of the binary stays portable (runtime
// dispatch decides whether these paths execute).
//
// Unlike AVX2, AVX-512DQ has a native 64-bit low multiply (vpmullq), so
// only the high half of a product needs composing from `_mm512_mul_epu32`
// partials — the same carry-exact schedule as `avx2::MulHi64`, twice as
// wide. Comparisons produce mask registers, so the Eq. 3/5 selects are a
// compare + masked blend instead of a full-width vector select.

#include <immintrin.h>

#include <cstdint>

#include "util/intmath.h"

namespace scaddar::avx512 {

/// High 64 bits of the lane-wise product `a * b`, exact for all inputs.
inline __m512i MulHi64(__m512i a, __m512i b) {
  const __m512i lo_mask = _mm512_set1_epi64(0xffffffffll);
  const __m512i a_hi = _mm512_srli_epi64(a, 32);
  const __m512i b_hi = _mm512_srli_epi64(b, 32);
  const __m512i ll = _mm512_mul_epu32(a, b);        // aL*bL
  const __m512i lh = _mm512_mul_epu32(a, b_hi);     // aL*bH
  const __m512i hl = _mm512_mul_epu32(a_hi, b);     // aH*bL
  const __m512i hh = _mm512_mul_epu32(a_hi, b_hi);  // aH*bH
  // Carry out of bits [32, 64): each addend is < 2^32, so the sum is < 3*2^32
  // and cannot overflow a 64-bit lane.
  const __m512i mid =
      _mm512_add_epi64(_mm512_add_epi64(_mm512_srli_epi64(ll, 32),
                                        _mm512_and_si512(lh, lo_mask)),
                       _mm512_and_si512(hl, lo_mask));
  return _mm512_add_epi64(
      _mm512_add_epi64(hh, _mm512_srli_epi64(mid, 32)),
      _mm512_add_epi64(_mm512_srli_epi64(lh, 32), _mm512_srli_epi64(hl, 32)));
}

/// A `FastDiv64` broadcast over 8 lanes — the AVX-512 twin of `avx2::Div4`,
/// bit-exact with the scalar `Div`/`Mod` for every x.
class Div8 {
 public:
  explicit Div8(const FastDiv64& div)
      : magic_(_mm512_set1_epi64(static_cast<int64_t>(div.magic()))),
        divisor_(_mm512_set1_epi64(static_cast<int64_t>(div.divisor()))),
        shift_(_mm_cvtsi32_si128(div.shift())),
        power_of_two_(div.magic() == 0),
        rounding_add_(div.rounding_add()) {}

  /// Lane-wise `x / divisor()`.
  __m512i Div(__m512i x) const {
    if (power_of_two_) {
      return _mm512_srl_epi64(x, shift_);
    }
    return Reduce(x, MulHi64(x, magic_));
  }

  /// Lane-wise `x / divisor()` for x < 2^32 in every lane (caller-proven
  /// via `AdvanceValueBound`); see `avx2::Div4::DivNarrow` for why the
  /// two-partial high word is exact.
  __m512i DivNarrow(__m512i x) const {
    if (power_of_two_) {
      return _mm512_srl_epi64(x, shift_);
    }
    const __m512i magic_hi = _mm512_srli_epi64(magic_, 32);
    const __m512i hi = _mm512_srli_epi64(
        _mm512_add_epi64(_mm512_mul_epu32(x, magic_hi),
                         _mm512_srli_epi64(_mm512_mul_epu32(x, magic_), 32)),
        32);
    return Reduce(x, hi);
  }

  /// Lane-wise `x mod divisor()` given `q = Div(x)`.
  __m512i Mod(__m512i x, __m512i q) const {
    return _mm512_sub_epi64(x, _mm512_mullo_epi64(q, divisor_));
  }

  /// `Mod` for q and divisor both < 2^32: the product fits one
  /// `_mm512_mul_epu32`.
  __m512i ModNarrow(__m512i x, __m512i q) const {
    return _mm512_sub_epi64(x, _mm512_mul_epu32(q, divisor_));
  }

 private:
  // The post-mulhi schedule shared by Div/DivNarrow.
  __m512i Reduce(__m512i x, __m512i hi) const {
    if (rounding_add_) {
      const __m512i fixup =
          _mm512_add_epi64(_mm512_srli_epi64(_mm512_sub_epi64(x, hi), 1), hi);
      return _mm512_srl_epi64(fixup, shift_);
    }
    return _mm512_srl_epi64(hi, shift_);
  }

  __m512i magic_;
  __m512i divisor_;
  __m128i shift_;
  bool power_of_two_;
  bool rounding_add_;
};

}  // namespace scaddar::avx512

#endif  // SCADDAR_UTIL_SIMD_AVX512_H_
