#ifndef SCADDAR_UTIL_SIMD_H_
#define SCADDAR_UTIL_SIMD_H_

#include <string_view>

namespace scaddar {

/// The vector instruction tiers the kernels dispatch over. Ordered: a level
/// implies every level below it, so "is AVX2 usable" is `level >= kAvx2`.
enum class SimdLevel {
  kScalar = 0,  // Portable baseline, always available.
  kAvx2 = 1,    // 4x64-bit integer lanes (x86-64 with AVX2).
  kAvx512 = 2,  // 8x64-bit lanes + native 64-bit mullo (AVX-512F + DQ).
};

/// Stable lower-case name for logs, bench labels and JSON ("scalar",
/// "avx2", "avx512").
std::string_view SimdLevelName(SimdLevel level);

/// The best level this CPU supports, probed once (cpuid on x86). Reports
/// hardware capability only — it ignores the force-scalar override and
/// whether the binary was even built with AVX2 kernels (a backend may be
/// absent; dispatchers must handle a null backend at a supported level).
SimdLevel DetectedSimdLevel();

/// True when the `SCADDAR_FORCE_SCALAR_KERNELS` environment variable is set
/// to a non-empty value other than "0". Read once at first use; flipping the
/// variable after that has no effect. The override keeps the portable
/// fallback testable/benchmarkable on hardware that would otherwise always
/// dispatch to the vector backend.
bool ScalarKernelsForced();

/// The level the kernel dispatchers select right now:
/// `SetActiveSimdLevel` pin if present, else `kScalar` when
/// `ScalarKernelsForced()`, else `DetectedSimdLevel()`. Thread-safe (one
/// atomic load).
SimdLevel ActiveSimdLevel();

/// Pins `ActiveSimdLevel()` to `level` until `ResetActiveSimdLevel`. For
/// tests and benches that compare backends inside one process; `level` must
/// not exceed `DetectedSimdLevel()` (checked — pinning a level the CPU
/// cannot execute would SIGILL later).
void SetActiveSimdLevel(SimdLevel level);

/// Clears a `SetActiveSimdLevel` pin, returning dispatch to the
/// environment-aware default.
void ResetActiveSimdLevel();

}  // namespace scaddar

#endif  // SCADDAR_UTIL_SIMD_H_
