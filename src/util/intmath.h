#ifndef SCADDAR_UTIL_INTMATH_H_
#define SCADDAR_UTIL_INTMATH_H_

#include <cstdint>

#include "util/status.h"

namespace scaddar {

/// Quotient/remainder pair produced by `DivMod`. The paper's Definition 4.1
/// (`q_j = X_j div N_j`, `r_j = X_j mod N_j`) is used pervasively, so the
/// pair gets a named type rather than std::pair.
struct QuotRem {
  uint64_t quot = 0;
  uint64_t rem = 0;

  friend bool operator==(const QuotRem&, const QuotRem&) = default;
};

/// Returns `x div n` and `x mod n` in one call. `n` must be non-zero
/// (checked).
inline QuotRem DivMod(uint64_t x, uint64_t n) {
  SCADDAR_DCHECK(n != 0);
  return QuotRem{x / n, x % n};
}

/// A saturating non-negative 128-bit product accumulator. Tracks the product
/// `Pi_k = N0 * N1 * ... * Nk` from Lemma 4.2/4.3; the product can overflow
/// any fixed-width integer after enough operations, so multiplication
/// saturates at the maximum representable value and `saturated()` reports
/// that the true product is at least as large as `value()`.
class SaturatingProduct {
 public:
  /// Starts at the multiplicative identity (1).
  SaturatingProduct() = default;

  /// Multiplies the accumulator by `factor` (> 0, checked), saturating.
  void MultiplyBy(uint64_t factor);

  /// True once any multiplication overflowed 128 bits; the real product is
  /// then >= value() == max.
  bool saturated() const { return saturated_; }

  /// The (possibly saturated) product.
  unsigned __int128 value() const { return value_; }

  /// Returns true iff the tracked product is <= `limit`. Saturated products
  /// compare greater than any representable limit that is below max.
  bool LessEq(unsigned __int128 limit) const {
    return !saturated_ && value_ <= limit;
  }

 private:
  unsigned __int128 value_ = 1;
  bool saturated_ = false;
};

/// Precomputed multiply-shift reciprocal for repeated unsigned division by
/// a fixed 64-bit divisor (Granlund–Montgomery). One hardware division at
/// construction buys back every division in a hot loop: `Div` is a 64x64
/// high-multiply plus a shift. The batch REMAP kernels divide millions of
/// blocks by the same `N_j` per step, which is exactly this trade.
class FastDiv64 {
 public:
  /// Prepares division by `d` (> 0, checked).
  explicit FastDiv64(uint64_t d);

  /// Uninitialized-but-valid state (divides by 1); lets containers of
  /// FastDiv64 be resized before the divisors are known.
  FastDiv64() : FastDiv64(1) {}

  /// `x / divisor()`, exact for all x.
  uint64_t Div(uint64_t x) const {
    if (magic_ == 0) {
      return x >> shift_;  // Power-of-two divisor.
    }
    const uint64_t hi = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(magic_) * x) >> 64);
    if (add_) {
      return (((x - hi) >> 1) + hi) >> shift_;
    }
    return hi >> shift_;
  }

  /// `x mod divisor()`.
  uint64_t Mod(uint64_t x) const { return x - Div(x) * d_; }

  /// Both at once (one multiply, shared).
  QuotRem DivMod(uint64_t x) const {
    const uint64_t q = Div(x);
    return QuotRem{q, x - q * d_};
  }

  uint64_t divisor() const { return d_; }

  /// The raw reciprocal parameters, exposed for vector kernel backends that
  /// re-implement `Div` lane-wise (util/simd_avx2.h). `magic() == 0` flags a
  /// power-of-two divisor (plain shift); otherwise the quotient is
  /// `mulhi(x, magic()) >> shift()`, with the add-and-halve fixup first when
  /// `rounding_add()` is set.
  uint64_t magic() const { return magic_; }
  int shift() const { return shift_; }
  bool rounding_add() const { return add_; }

 private:
  uint64_t d_ = 1;
  uint64_t magic_ = 0;
  uint8_t shift_ = 0;
  bool add_ = false;
};

/// Floor of log base 2 of `x`; `x` must be non-zero (checked).
int FloorLog2(uint64_t x);

/// Ceiling of log base 2 of `x`; `x` must be non-zero (checked).
int CeilLog2(uint64_t x);

/// Exact base-2 logarithm as a double, defined for x >= 1. Used by the
/// rule-of-thumb estimate `k + 1 <= (b - log2(1/eps)) / log2(avg_disks)`.
double Log2(double x);

/// Greatest common divisor (both arguments may be zero; gcd(0,0) == 0).
uint64_t Gcd(uint64_t a, uint64_t b);

/// Returns `base` raised to `exp`, saturating at the maximum uint64 value.
uint64_t SaturatingPow(uint64_t base, uint32_t exp);

/// Returns a*b saturating at uint64 max.
uint64_t SaturatingMul(uint64_t a, uint64_t b);

/// Returns a+b saturating at uint64 max.
uint64_t SaturatingAdd(uint64_t a, uint64_t b);

/// The maximum random value for a generator emitting `bits` random bits:
/// `R = 2^bits - 1` (Definition 3.2). `bits` must be in [1, 64].
uint64_t MaxRandomForBits(int bits);

}  // namespace scaddar

#endif  // SCADDAR_UTIL_INTMATH_H_
