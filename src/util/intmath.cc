#include "util/intmath.h"

#include <cmath>
#include <limits>

namespace scaddar {

void SaturatingProduct::MultiplyBy(uint64_t factor) {
  SCADDAR_CHECK(factor > 0);
  if (saturated_) {
    return;
  }
  constexpr unsigned __int128 kMax = ~static_cast<unsigned __int128>(0);
  if (value_ > kMax / factor) {
    value_ = kMax;
    saturated_ = true;
    return;
  }
  value_ *= factor;
}

int FloorLog2(uint64_t x) {
  SCADDAR_CHECK(x != 0);
  return 63 - __builtin_clzll(x);
}

int CeilLog2(uint64_t x) {
  SCADDAR_CHECK(x != 0);
  const int floor_log = FloorLog2(x);
  return ((x & (x - 1)) == 0) ? floor_log : floor_log + 1;
}

double Log2(double x) {
  SCADDAR_CHECK(x >= 1.0);
  return std::log2(x);
}

uint64_t Gcd(uint64_t a, uint64_t b) {
  while (b != 0) {
    const uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

uint64_t SaturatingMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  if (a > std::numeric_limits<uint64_t>::max() / b) {
    return std::numeric_limits<uint64_t>::max();
  }
  return a * b;
}

uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  const uint64_t sum = a + b;
  if (sum < a) {
    return std::numeric_limits<uint64_t>::max();
  }
  return sum;
}

uint64_t SaturatingPow(uint64_t base, uint32_t exp) {
  uint64_t result = 1;
  while (exp > 0) {
    if ((exp & 1u) != 0) {
      result = SaturatingMul(result, base);
    }
    exp >>= 1u;
    if (exp > 0) {
      base = SaturatingMul(base, base);
    }
  }
  return result;
}

uint64_t MaxRandomForBits(int bits) {
  SCADDAR_CHECK(bits >= 1 && bits <= 64);
  if (bits == 64) {
    return std::numeric_limits<uint64_t>::max();
  }
  return (uint64_t{1} << bits) - 1;
}

}  // namespace scaddar
