#include "util/intmath.h"

#include <cmath>
#include <limits>

namespace scaddar {

void SaturatingProduct::MultiplyBy(uint64_t factor) {
  SCADDAR_CHECK(factor > 0);
  if (saturated_) {
    return;
  }
  constexpr unsigned __int128 kMax = ~static_cast<unsigned __int128>(0);
  if (value_ > kMax / factor) {
    value_ = kMax;
    saturated_ = true;
    return;
  }
  value_ *= factor;
}

FastDiv64::FastDiv64(uint64_t d) {
  SCADDAR_CHECK(d != 0);
  d_ = d;
  const int log = 63 - __builtin_clzll(d);
  if ((d & (d - 1)) == 0) {
    // Power of two: plain shift, flagged by magic_ == 0.
    magic_ = 0;
    shift_ = static_cast<uint8_t>(log);
    return;
  }
  // m = floor(2^(64+log) / d); 64+log <= 127 so the numerator fits in
  // 128 bits. The estimate q = (m+1)*x >> (64+log) is exact when the
  // defect e = d - (2^(64+log) mod d) is < 2^log; otherwise one more bit
  // of precision is recovered with the add-and-halve step.
  const unsigned __int128 p = static_cast<unsigned __int128>(1) << (64 + log);
  uint64_t m = static_cast<uint64_t>(p / d);
  const uint64_t rem = static_cast<uint64_t>(p - static_cast<unsigned __int128>(m) * d);
  const uint64_t e = d - rem;
  shift_ = static_cast<uint8_t>(log);
  if (e < (uint64_t{1} << log)) {
    add_ = false;
  } else {
    add_ = true;
    const uint64_t twice_rem = rem + rem;
    m += m;
    if (twice_rem >= d || twice_rem < rem) {
      ++m;
    }
  }
  magic_ = m + 1;
}

int FloorLog2(uint64_t x) {
  SCADDAR_CHECK(x != 0);
  return 63 - __builtin_clzll(x);
}

int CeilLog2(uint64_t x) {
  SCADDAR_CHECK(x != 0);
  const int floor_log = FloorLog2(x);
  return ((x & (x - 1)) == 0) ? floor_log : floor_log + 1;
}

double Log2(double x) {
  SCADDAR_CHECK(x >= 1.0);
  return std::log2(x);
}

uint64_t Gcd(uint64_t a, uint64_t b) {
  while (b != 0) {
    const uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

uint64_t SaturatingMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  if (a > std::numeric_limits<uint64_t>::max() / b) {
    return std::numeric_limits<uint64_t>::max();
  }
  return a * b;
}

uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  const uint64_t sum = a + b;
  if (sum < a) {
    return std::numeric_limits<uint64_t>::max();
  }
  return sum;
}

uint64_t SaturatingPow(uint64_t base, uint32_t exp) {
  uint64_t result = 1;
  while (exp > 0) {
    if ((exp & 1u) != 0) {
      result = SaturatingMul(result, base);
    }
    exp >>= 1u;
    if (exp > 0) {
      base = SaturatingMul(base, base);
    }
  }
  return result;
}

uint64_t MaxRandomForBits(int bits) {
  SCADDAR_CHECK(bits >= 1 && bits <= 64);
  if (bits == 64) {
    return std::numeric_limits<uint64_t>::max();
  }
  return (uint64_t{1} << bits) - 1;
}

}  // namespace scaddar
