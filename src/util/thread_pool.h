#ifndef SCADDAR_UTIL_THREAD_POOL_H_
#define SCADDAR_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace scaddar {

/// A minimal fixed-size worker pool for compute fan-out (redistribution
/// planning shards, batch chain evaluation). Deliberately small surface:
/// tasks are fire-and-forget closures, and `ParallelFor` provides the one
/// pattern the planners need — chunked static partitioning with a join.
/// No work stealing, no priorities: planner shards are pre-balanced by
/// block count, so static chunks keep the merge order deterministic and
/// the synchronization trivial to reason about (and to race-check).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Joins all workers; pending tasks are drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task` for execution on some worker.
  void Schedule(std::function<void()> task);

  /// Runs `body(begin, end)` over `[begin, end)` split into contiguous
  /// chunks, one per worker (the paper-facing "shard" granularity). Blocks
  /// until every chunk finished. Chunk `t` covers
  /// `[begin + t*ceil(n/k), ...)`, so the partition — and anything built
  /// per-chunk and merged in chunk order — is deterministic for a given
  /// `(n, num_threads)`. The calling thread executes chunk 0 itself.
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t, int64_t)>& body);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace scaddar

#endif  // SCADDAR_UTIL_THREAD_POOL_H_
