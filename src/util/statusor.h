#ifndef SCADDAR_UTIL_STATUSOR_H_
#define SCADDAR_UTIL_STATUSOR_H_

#include <optional>
#include <utility>

#include "util/status.h"

namespace scaddar {

/// Union of a `Status` and a `T`: either holds a value (and an OK status) or
/// a non-OK status explaining why no value is available. Accessing the value
/// of a non-OK `StatusOr` aborts the process, so callers must test `ok()`
/// first (the library does not use exceptions).
template <typename T>
class StatusOr {
 public:
  /// Constructs from a non-OK status. Constructing from an OK status is a
  /// programmer error and aborts.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    SCADDAR_CHECK(!status_.ok());
  }

  /// Constructs from a value; the status is OK.
  StatusOr(T value)  // NOLINT
      : status_(OkStatus()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    EnsureOk();
    return *value_;
  }
  T& value() & {
    EnsureOk();
    return *value_;
  }
  T&& value() && {
    EnsureOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void EnsureOk() const {
    if (!status_.ok()) {
      internal::DieBecauseOfBadStatusOrAccess(status_);
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace scaddar

/// Evaluates `rexpr` (a StatusOr expression); on error returns the status
/// from the current function, otherwise moves the value into `lhs`.
#define SCADDAR_ASSIGN_OR_RETURN(lhs, rexpr)      \
  SCADDAR_ASSIGN_OR_RETURN_IMPL_(                 \
      SCADDAR_STATUS_MACROS_CONCAT_(statusor_, __LINE__), lhs, rexpr)

#define SCADDAR_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                   \
  if (!var.ok()) {                                      \
    return var.status();                                \
  }                                                     \
  lhs = std::move(var).value()

#define SCADDAR_STATUS_MACROS_CONCAT_(x, y) SCADDAR_STATUS_MACROS_CONCAT_IMPL_(x, y)
#define SCADDAR_STATUS_MACROS_CONCAT_IMPL_(x, y) x##y

#endif  // SCADDAR_UTIL_STATUSOR_H_
