#ifndef SCADDAR_UTIL_SIMD_AVX2_H_
#define SCADDAR_UTIL_SIMD_AVX2_H_

// 4x64-bit AVX2 lane primitives shared by the vector kernel backends
// (core/compiled_log_simd.cc, random/splitmix64_simd.cc).
//
// Include ONLY from translation units compiled with -mavx2: the helpers use
// AVX2 intrinsics unconditionally, and the surrounding build adds the flag
// per-file so the rest of the binary stays portable (runtime dispatch, not
// compile-time, decides whether these paths execute).
//
// AVX2 has no 64x64-bit multiply. Both halves of the product are composed
// from `_mm256_mul_epu32` (32x32 -> 64) partial products: with
// a = aH*2^32 + aL and b = bH*2^32 + bL,
//
//   a*b = (aH*bH)*2^64 + (aL*bH + aH*bL)*2^32 + aL*bL
//
// `MulLo64` needs only the low halves of the cross terms; `MulHi64` sums the
// carries exactly (the mid-sum is split so no intermediate overflows 64
// bits), which is what makes the `FastDiv64` reciprocal bit-exact lane-wise.

#include <immintrin.h>

#include <cstdint>

#include "util/intmath.h"

namespace scaddar::avx2 {

/// Low 64 bits of the lane-wise product `a * b`.
inline __m256i MulLo64(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a, b_hi), _mm256_mul_epu32(a_hi, b));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

/// High 64 bits of the lane-wise product `a * b`, exact for all inputs.
inline __m256i MulHi64(__m256i a, __m256i b) {
  const __m256i lo_mask = _mm256_set1_epi64x(0xffffffffll);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i ll = _mm256_mul_epu32(a, b);        // aL*bL
  const __m256i lh = _mm256_mul_epu32(a, b_hi);     // aL*bH
  const __m256i hl = _mm256_mul_epu32(a_hi, b);     // aH*bL
  const __m256i hh = _mm256_mul_epu32(a_hi, b_hi);  // aH*bH
  // Carry out of bits [32, 64): each addend is < 2^32, so the sum is < 3*2^32
  // and cannot overflow a 64-bit lane.
  const __m256i mid =
      _mm256_add_epi64(_mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                                        _mm256_and_si256(lh, lo_mask)),
                       _mm256_and_si256(hl, lo_mask));
  return _mm256_add_epi64(
      _mm256_add_epi64(hh, _mm256_srli_epi64(mid, 32)),
      _mm256_add_epi64(_mm256_srli_epi64(lh, 32), _mm256_srli_epi64(hl, 32)));
}

/// A `FastDiv64` broadcast over 4 lanes: the same multiply-shift reciprocal,
/// evaluated with `MulHi64`/`MulLo64`. Bit-exact with the scalar `Div`/`Mod`
/// for every x (both implement the same Granlund–Montgomery schedule).
class Div4 {
 public:
  explicit Div4(const FastDiv64& div)
      : magic_(_mm256_set1_epi64x(static_cast<int64_t>(div.magic()))),
        divisor_(_mm256_set1_epi64x(static_cast<int64_t>(div.divisor()))),
        shift_(_mm_cvtsi32_si128(div.shift())),
        power_of_two_(div.magic() == 0),
        rounding_add_(div.rounding_add()) {}

  /// Lane-wise `x / divisor()`.
  __m256i Div(__m256i x) const {
    if (power_of_two_) {
      return _mm256_srl_epi64(x, shift_);
    }
    return Reduce(x, MulHi64(x, magic_));
  }

  /// Lane-wise `x / divisor()` for x < 2^32 in every lane (caller-proven
  /// via `AdvanceValueBound`). With the high operand half zero, two of the
  /// four `MulHi64` partial products vanish: hi64(x * magic) is just
  /// (x*magicH + (x*magicL >> 32)) >> 32, and x*magicH <= (2^32-1)^2 leaves
  /// room for the < 2^32 carry, so nothing overflows. Bit-identical to
  /// `Div` on narrow inputs — it computes the same high word.
  __m256i DivNarrow(__m256i x) const {
    if (power_of_two_) {
      return _mm256_srl_epi64(x, shift_);
    }
    const __m256i magic_hi = _mm256_srli_epi64(magic_, 32);
    const __m256i hi = _mm256_srli_epi64(
        _mm256_add_epi64(_mm256_mul_epu32(x, magic_hi),
                         _mm256_srli_epi64(_mm256_mul_epu32(x, magic_), 32)),
        32);
    return Reduce(x, hi);
  }

  /// Lane-wise `x mod divisor()` given `q = Div(x)`.
  __m256i Mod(__m256i x, __m256i q) const {
    return _mm256_sub_epi64(x, MulLo64(q, divisor_));
  }

  /// `Mod` for q and divisor both < 2^32: the product fits one
  /// `_mm256_mul_epu32`.
  __m256i ModNarrow(__m256i x, __m256i q) const {
    return _mm256_sub_epi64(x, _mm256_mul_epu32(q, divisor_));
  }

 private:
  // The post-mulhi schedule shared by Div/DivNarrow.
  __m256i Reduce(__m256i x, __m256i hi) const {
    if (rounding_add_) {
      const __m256i fixup =
          _mm256_add_epi64(_mm256_srli_epi64(_mm256_sub_epi64(x, hi), 1), hi);
      return _mm256_srl_epi64(fixup, shift_);
    }
    return _mm256_srl_epi64(hi, shift_);
  }

  __m256i magic_;
  __m256i divisor_;
  __m128i shift_;
  bool power_of_two_;
  bool rounding_add_;
};

}  // namespace scaddar::avx2

#endif  // SCADDAR_UTIL_SIMD_AVX2_H_
