#include "util/thread_pool.h"

#include <algorithm>

namespace scaddar {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(num_threads, 1);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Schedule(std::function<void()> task) {
  SCADDAR_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    SCADDAR_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Shutting down and drained.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             const std::function<void(int64_t, int64_t)>& body) {
  SCADDAR_CHECK(begin <= end);
  const int64_t n = end - begin;
  if (n == 0) {
    return;
  }
  const int64_t chunks = std::min<int64_t>(num_threads(), n);
  const int64_t chunk_size = (n + chunks - 1) / chunks;

  std::mutex done_mu;
  std::condition_variable done_cv;
  int64_t pending = chunks - 1;  // Chunk 0 runs on the calling thread.

  for (int64_t t = 1; t < chunks; ++t) {
    const int64_t lo = begin + t * chunk_size;
    const int64_t hi = std::min(end, lo + chunk_size);
    Schedule([&, lo, hi] {
      body(lo, hi);
      // Notify while holding the lock: done_cv lives on the caller's stack,
      // and the caller may destroy it as soon as it can observe pending == 0.
      std::lock_guard<std::mutex> lock(done_mu);
      --pending;
      done_cv.notify_one();
    });
  }
  body(begin, std::min(end, begin + chunk_size));
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return pending == 0; });
}

}  // namespace scaddar
