#ifndef SCADDAR_UTIL_EPOCH_H_
#define SCADDAR_UTIL_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace scaddar {

/// Copyable acquire/release change-detection counter — the concurrency-safe
/// form of the plain `int64_t revision_` fields the caches key on. The
/// sharded serving runtime reads these counters from worker threads while
/// the coordinator is quiesced; publishing every bump with release order and
/// reading with acquire order makes the counter itself the happens-before
/// edge, so a reader that observes revision `r` also observes every write
/// that produced it.
///
/// Copy/assign read relaxed: copies only happen on single-threaded paths
/// (snapshot restore, op-log replay scripts) where no publication is racing.
class RevisionCounter {
 public:
  RevisionCounter() = default;
  explicit RevisionCounter(int64_t value) : value_(value) {}

  RevisionCounter(const RevisionCounter& other) noexcept
      : value_(other.value_.load(std::memory_order_relaxed)) {}
  RevisionCounter& operator=(const RevisionCounter& other) noexcept {
    value_.store(other.value_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  /// Acquire-load of the current revision (pairs with `Bump`).
  int64_t Load() const { return value_.load(std::memory_order_acquire); }

  /// Release-publishes the next revision. Single-writer: callers bump only
  /// from the mutation path, which the runtime serializes between rounds.
  void Bump() {
    value_.store(value_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_release);
  }

 private:
  std::atomic<int64_t> value_{0};
};

/// Sequence lock: the epoch-publication primitive the sharded runtime's
/// cross-shard coordination goes through. A writer wraps its update in
/// `WriteBegin`/`WriteEnd` (sequence odd while the update is in flight);
/// readers snapshot with `ReadBegin`, copy the protected data, and validate
/// with `ReadRetry` — they spin past an in-flight writer but never block it,
/// and a writer never waits for readers. One writer at a time (the round
/// coordinator); any number of readers (the shard workers).
class SeqLock {
 public:
  /// Marks a publication in flight; returns the (odd) in-flight sequence.
  uint64_t WriteBegin() {
    const uint64_t seq = sequence_.load(std::memory_order_relaxed) + 1;
    sequence_.store(seq, std::memory_order_release);
    // Order the data writes after the odd marker so a concurrent reader
    // that misses the marker cannot also see the half-written data.
    std::atomic_thread_fence(std::memory_order_release);
    return seq;
  }

  /// Completes the publication begun by `WriteBegin`.
  void WriteEnd() {
    const uint64_t seq = sequence_.load(std::memory_order_relaxed) + 1;
    sequence_.store(seq, std::memory_order_release);
  }

  /// Returns a stable (even) sequence token, spinning past in-flight writes.
  uint64_t ReadBegin() const {
    uint64_t seq = sequence_.load(std::memory_order_acquire);
    while (seq & 1) {
      seq = sequence_.load(std::memory_order_acquire);
    }
    return seq;
  }

  /// True iff a write overlapped the read section opened with `token` — the
  /// reader must retry its copy.
  bool ReadRetry(uint64_t token) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return sequence_.load(std::memory_order_acquire) != token;
  }

  /// The current raw sequence (even = quiescent); exposed for tests and the
  /// runtime's epoch asserts.
  uint64_t sequence() const { return sequence_.load(std::memory_order_acquire); }

 private:
  std::atomic<uint64_t> sequence_{0};
};

/// A value published wholesale through a `SeqLock`: `Publish` replaces the
/// value (writer side, one at a time), `Read` returns a torn-free copy
/// (reader side, lock-free, retries past concurrent publishes). `T` must be
/// trivially copyable; keep it small — this is for epoch descriptors, not
/// bulk data.
///
/// The payload is stored as relaxed-atomic words rather than a raw `T`:
/// the classic seqlock copies the value non-atomically and relies on the
/// retry to discard torn reads, but that overlapping access is still a
/// data race in the C++ memory model (and TSan reports it). Word-wise
/// relaxed atomics keep the fast path — no ordering beyond the seqlock's
/// own fences — while making the retry-discarded reads defined behavior.
template <typename T>
class Published {
  static_assert(std::is_trivially_copyable_v<T>,
                "Published<T> copies T as raw words");

 public:
  Published() = default;
  explicit Published(const T& initial) { Store(initial); }

  void Publish(const T& value) {
    lock_.WriteBegin();
    Store(value);
    lock_.WriteEnd();
  }

  T Read() const {
    uint64_t buffer[kWords];
    uint64_t token;
    do {
      token = lock_.ReadBegin();
      for (size_t w = 0; w < kWords; ++w) {
        buffer[w] = words_[w].load(std::memory_order_relaxed);
      }
    } while (lock_.ReadRetry(token));
    T copy;
    std::memcpy(&copy, buffer, sizeof(T));
    return copy;
  }

  /// Sequence token of the last completed publication (even); workers pin
  /// this at fan-out and assert it unchanged at join to prove no writer ran
  /// during the round.
  uint64_t sequence() const { return lock_.sequence(); }

 private:
  static constexpr size_t kWords =
      (sizeof(T) + sizeof(uint64_t) - 1) / sizeof(uint64_t);

  void Store(const T& value) {
    uint64_t buffer[kWords] = {};
    std::memcpy(buffer, &value, sizeof(T));
    for (size_t w = 0; w < kWords; ++w) {
      words_[w].store(buffer[w], std::memory_order_relaxed);
    }
  }

  SeqLock lock_;
  std::atomic<uint64_t> words_[kWords] = {};
};

}  // namespace scaddar

#endif  // SCADDAR_UTIL_EPOCH_H_
