#ifndef SCADDAR_UTIL_STATUS_H_
#define SCADDAR_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace scaddar {

/// Canonical error codes, modelled after the widely used subset of
/// absl::StatusCode. The library does not use C++ exceptions; every fallible
/// operation reports failure through `Status` or `StatusOr<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kResourceExhausted = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kUnavailable = 9,
  kDataLoss = 10,
};

/// Returns a stable human-readable name for `code` (e.g. "INVALID_ARGUMENT").
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type carrying an error code and message. An OK status holds
/// no message and compares equal to `Status::Ok()`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a diagnostic `message`. A `kOk`
  /// code yields an OK status and the message is dropped.
  Status(StatusCode code, std::string_view message)
      : code_(code),
        message_(code == StatusCode::kOk ? std::string()
                                         : std::string(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Named constructor for the OK status.
  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "CODE: message" for logs and test failure output.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) {
    return !(a == b);
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Convenience factories mirroring absl's `InvalidArgumentError` etc.
Status OkStatus();
Status InvalidArgumentError(std::string_view message);
Status NotFoundError(std::string_view message);
Status AlreadyExistsError(std::string_view message);
Status FailedPreconditionError(std::string_view message);
Status OutOfRangeError(std::string_view message);
Status ResourceExhaustedError(std::string_view message);
Status UnimplementedError(std::string_view message);
Status InternalError(std::string_view message);
Status UnavailableError(std::string_view message);
Status DataLossError(std::string_view message);

namespace internal {
[[noreturn]] void DieBecauseOfBadStatusOrAccess(const Status& status);
[[noreturn]] void DieBecauseOfCheckFailure(const char* file, int line,
                                           const char* expr);
}  // namespace internal

}  // namespace scaddar

/// Aborts the process with a diagnostic when `expr` is false. Used for
/// programmer errors (invariant violations), never for recoverable errors.
#define SCADDAR_CHECK(expr)                                                \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::scaddar::internal::DieBecauseOfCheckFailure(__FILE__, __LINE__,    \
                                                    #expr);                \
    }                                                                      \
  } while (false)

#ifdef NDEBUG
// Compiled out, but the expression stays visible to the compiler so that
// parameters used only in DCHECKs are not flagged as unused.
#define SCADDAR_DCHECK(expr)      \
  do {                            \
    if (false) {                  \
      static_cast<void>(expr);    \
    }                             \
  } while (false)
#else
#define SCADDAR_DCHECK(expr) SCADDAR_CHECK(expr)
#endif

/// Evaluates `expr` (a Status expression) and returns it from the current
/// function if it is not OK.
#define SCADDAR_RETURN_IF_ERROR(expr)                 \
  do {                                                \
    ::scaddar::Status scaddar_status_tmp_ = (expr);   \
    if (!scaddar_status_tmp_.ok()) {                  \
      return scaddar_status_tmp_;                     \
    }                                                 \
  } while (false)

#endif  // SCADDAR_UTIL_STATUS_H_
