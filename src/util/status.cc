#include "util/status.h"

namespace scaddar {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result(StatusCodeToString(code_));
  result += ": ";
  result += message_;
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status OkStatus() { return Status(); }

Status InvalidArgumentError(std::string_view message) {
  return Status(StatusCode::kInvalidArgument, message);
}

Status NotFoundError(std::string_view message) {
  return Status(StatusCode::kNotFound, message);
}

Status AlreadyExistsError(std::string_view message) {
  return Status(StatusCode::kAlreadyExists, message);
}

Status FailedPreconditionError(std::string_view message) {
  return Status(StatusCode::kFailedPrecondition, message);
}

Status OutOfRangeError(std::string_view message) {
  return Status(StatusCode::kOutOfRange, message);
}

Status ResourceExhaustedError(std::string_view message) {
  return Status(StatusCode::kResourceExhausted, message);
}

Status UnimplementedError(std::string_view message) {
  return Status(StatusCode::kUnimplemented, message);
}

Status InternalError(std::string_view message) {
  return Status(StatusCode::kInternal, message);
}

Status UnavailableError(std::string_view message) {
  return Status(StatusCode::kUnavailable, message);
}

Status DataLossError(std::string_view message) {
  return Status(StatusCode::kDataLoss, message);
}

namespace internal {

void DieBecauseOfBadStatusOrAccess(const Status& status) {
  std::fprintf(stderr, "StatusOr accessed without value: %s\n",
               status.ToString().c_str());
  std::abort();
}

void DieBecauseOfCheckFailure(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "%s:%d: SCADDAR_CHECK failed: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal

}  // namespace scaddar
