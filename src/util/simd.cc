#include "util/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/status.h"

namespace scaddar {

namespace {

SimdLevel ProbeCpu() {
#if defined(__x86_64__) || defined(__i386__)
  // DQ is required for the native 64-bit mullo (vpmullq) the kernels use.
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq")) {
    return SimdLevel::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) {
    return SimdLevel::kAvx2;
  }
#endif
  return SimdLevel::kScalar;
}

bool ProbeForceScalar() {
  const char* value = std::getenv("SCADDAR_FORCE_SCALAR_KERNELS");
  return value != nullptr && value[0] != '\0' &&
         std::strcmp(value, "0") != 0;
}

// -1 means "no pin"; otherwise the pinned SimdLevel as an int.
std::atomic<int>& PinnedLevel() {
  static std::atomic<int> pinned{-1};
  return pinned;
}

}  // namespace

std::string_view SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

SimdLevel DetectedSimdLevel() {
  static const SimdLevel detected = ProbeCpu();
  return detected;
}

bool ScalarKernelsForced() {
  static const bool forced = ProbeForceScalar();
  return forced;
}

SimdLevel ActiveSimdLevel() {
  const int pinned = PinnedLevel().load(std::memory_order_relaxed);
  if (pinned >= 0) {
    return static_cast<SimdLevel>(pinned);
  }
  return ScalarKernelsForced() ? SimdLevel::kScalar : DetectedSimdLevel();
}

void SetActiveSimdLevel(SimdLevel level) {
  SCADDAR_CHECK(level <= DetectedSimdLevel());
  PinnedLevel().store(static_cast<int>(level), std::memory_order_relaxed);
}

void ResetActiveSimdLevel() {
  PinnedLevel().store(-1, std::memory_order_relaxed);
}

}  // namespace scaddar
