file(REMOVE_RECURSE
  "CMakeFiles/scaddar_faults.dir/faults/mirror.cc.o"
  "CMakeFiles/scaddar_faults.dir/faults/mirror.cc.o.d"
  "CMakeFiles/scaddar_faults.dir/faults/parity.cc.o"
  "CMakeFiles/scaddar_faults.dir/faults/parity.cc.o.d"
  "CMakeFiles/scaddar_faults.dir/faults/recovery.cc.o"
  "CMakeFiles/scaddar_faults.dir/faults/recovery.cc.o.d"
  "CMakeFiles/scaddar_faults.dir/faults/replication.cc.o"
  "CMakeFiles/scaddar_faults.dir/faults/replication.cc.o.d"
  "libscaddar_faults.a"
  "libscaddar_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaddar_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
