file(REMOVE_RECURSE
  "libscaddar_faults.a"
)
