# Empty dependencies file for scaddar_faults.
# This may be replaced when dependencies are built.
