file(REMOVE_RECURSE
  "CMakeFiles/scaddar_util.dir/util/intmath.cc.o"
  "CMakeFiles/scaddar_util.dir/util/intmath.cc.o.d"
  "CMakeFiles/scaddar_util.dir/util/status.cc.o"
  "CMakeFiles/scaddar_util.dir/util/status.cc.o.d"
  "libscaddar_util.a"
  "libscaddar_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaddar_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
