file(REMOVE_RECURSE
  "libscaddar_util.a"
)
