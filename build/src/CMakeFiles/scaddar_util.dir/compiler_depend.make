# Empty compiler generated dependencies file for scaddar_util.
# This may be replaced when dependencies are built.
