file(REMOVE_RECURSE
  "libscaddar_placement.a"
)
