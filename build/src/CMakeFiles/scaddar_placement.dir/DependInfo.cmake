
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/placement/analysis.cc" "src/CMakeFiles/scaddar_placement.dir/placement/analysis.cc.o" "gcc" "src/CMakeFiles/scaddar_placement.dir/placement/analysis.cc.o.d"
  "/root/repo/src/placement/consistent_hash_policy.cc" "src/CMakeFiles/scaddar_placement.dir/placement/consistent_hash_policy.cc.o" "gcc" "src/CMakeFiles/scaddar_placement.dir/placement/consistent_hash_policy.cc.o.d"
  "/root/repo/src/placement/directory_policy.cc" "src/CMakeFiles/scaddar_placement.dir/placement/directory_policy.cc.o" "gcc" "src/CMakeFiles/scaddar_placement.dir/placement/directory_policy.cc.o.d"
  "/root/repo/src/placement/jump_hash_policy.cc" "src/CMakeFiles/scaddar_placement.dir/placement/jump_hash_policy.cc.o" "gcc" "src/CMakeFiles/scaddar_placement.dir/placement/jump_hash_policy.cc.o.d"
  "/root/repo/src/placement/mod_policy.cc" "src/CMakeFiles/scaddar_placement.dir/placement/mod_policy.cc.o" "gcc" "src/CMakeFiles/scaddar_placement.dir/placement/mod_policy.cc.o.d"
  "/root/repo/src/placement/naive_policy.cc" "src/CMakeFiles/scaddar_placement.dir/placement/naive_policy.cc.o" "gcc" "src/CMakeFiles/scaddar_placement.dir/placement/naive_policy.cc.o.d"
  "/root/repo/src/placement/policy.cc" "src/CMakeFiles/scaddar_placement.dir/placement/policy.cc.o" "gcc" "src/CMakeFiles/scaddar_placement.dir/placement/policy.cc.o.d"
  "/root/repo/src/placement/registry.cc" "src/CMakeFiles/scaddar_placement.dir/placement/registry.cc.o" "gcc" "src/CMakeFiles/scaddar_placement.dir/placement/registry.cc.o.d"
  "/root/repo/src/placement/round_robin_policy.cc" "src/CMakeFiles/scaddar_placement.dir/placement/round_robin_policy.cc.o" "gcc" "src/CMakeFiles/scaddar_placement.dir/placement/round_robin_policy.cc.o.d"
  "/root/repo/src/placement/scaddar_policy.cc" "src/CMakeFiles/scaddar_placement.dir/placement/scaddar_policy.cc.o" "gcc" "src/CMakeFiles/scaddar_placement.dir/placement/scaddar_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scaddar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scaddar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scaddar_random.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scaddar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
