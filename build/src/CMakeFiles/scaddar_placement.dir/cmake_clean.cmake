file(REMOVE_RECURSE
  "CMakeFiles/scaddar_placement.dir/placement/analysis.cc.o"
  "CMakeFiles/scaddar_placement.dir/placement/analysis.cc.o.d"
  "CMakeFiles/scaddar_placement.dir/placement/consistent_hash_policy.cc.o"
  "CMakeFiles/scaddar_placement.dir/placement/consistent_hash_policy.cc.o.d"
  "CMakeFiles/scaddar_placement.dir/placement/directory_policy.cc.o"
  "CMakeFiles/scaddar_placement.dir/placement/directory_policy.cc.o.d"
  "CMakeFiles/scaddar_placement.dir/placement/jump_hash_policy.cc.o"
  "CMakeFiles/scaddar_placement.dir/placement/jump_hash_policy.cc.o.d"
  "CMakeFiles/scaddar_placement.dir/placement/mod_policy.cc.o"
  "CMakeFiles/scaddar_placement.dir/placement/mod_policy.cc.o.d"
  "CMakeFiles/scaddar_placement.dir/placement/naive_policy.cc.o"
  "CMakeFiles/scaddar_placement.dir/placement/naive_policy.cc.o.d"
  "CMakeFiles/scaddar_placement.dir/placement/policy.cc.o"
  "CMakeFiles/scaddar_placement.dir/placement/policy.cc.o.d"
  "CMakeFiles/scaddar_placement.dir/placement/registry.cc.o"
  "CMakeFiles/scaddar_placement.dir/placement/registry.cc.o.d"
  "CMakeFiles/scaddar_placement.dir/placement/round_robin_policy.cc.o"
  "CMakeFiles/scaddar_placement.dir/placement/round_robin_policy.cc.o.d"
  "CMakeFiles/scaddar_placement.dir/placement/scaddar_policy.cc.o"
  "CMakeFiles/scaddar_placement.dir/placement/scaddar_policy.cc.o.d"
  "libscaddar_placement.a"
  "libscaddar_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaddar_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
