# Empty dependencies file for scaddar_placement.
# This may be replaced when dependencies are built.
