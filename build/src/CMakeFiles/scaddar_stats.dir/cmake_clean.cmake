file(REMOVE_RECURSE
  "CMakeFiles/scaddar_stats.dir/stats/accumulator.cc.o"
  "CMakeFiles/scaddar_stats.dir/stats/accumulator.cc.o.d"
  "CMakeFiles/scaddar_stats.dir/stats/chi_square.cc.o"
  "CMakeFiles/scaddar_stats.dir/stats/chi_square.cc.o.d"
  "CMakeFiles/scaddar_stats.dir/stats/histogram.cc.o"
  "CMakeFiles/scaddar_stats.dir/stats/histogram.cc.o.d"
  "CMakeFiles/scaddar_stats.dir/stats/load_metrics.cc.o"
  "CMakeFiles/scaddar_stats.dir/stats/load_metrics.cc.o.d"
  "CMakeFiles/scaddar_stats.dir/stats/movement.cc.o"
  "CMakeFiles/scaddar_stats.dir/stats/movement.cc.o.d"
  "CMakeFiles/scaddar_stats.dir/stats/randtests.cc.o"
  "CMakeFiles/scaddar_stats.dir/stats/randtests.cc.o.d"
  "libscaddar_stats.a"
  "libscaddar_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaddar_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
