# Empty compiler generated dependencies file for scaddar_stats.
# This may be replaced when dependencies are built.
