
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/accumulator.cc" "src/CMakeFiles/scaddar_stats.dir/stats/accumulator.cc.o" "gcc" "src/CMakeFiles/scaddar_stats.dir/stats/accumulator.cc.o.d"
  "/root/repo/src/stats/chi_square.cc" "src/CMakeFiles/scaddar_stats.dir/stats/chi_square.cc.o" "gcc" "src/CMakeFiles/scaddar_stats.dir/stats/chi_square.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/scaddar_stats.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/scaddar_stats.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/load_metrics.cc" "src/CMakeFiles/scaddar_stats.dir/stats/load_metrics.cc.o" "gcc" "src/CMakeFiles/scaddar_stats.dir/stats/load_metrics.cc.o.d"
  "/root/repo/src/stats/movement.cc" "src/CMakeFiles/scaddar_stats.dir/stats/movement.cc.o" "gcc" "src/CMakeFiles/scaddar_stats.dir/stats/movement.cc.o.d"
  "/root/repo/src/stats/randtests.cc" "src/CMakeFiles/scaddar_stats.dir/stats/randtests.cc.o" "gcc" "src/CMakeFiles/scaddar_stats.dir/stats/randtests.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scaddar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
