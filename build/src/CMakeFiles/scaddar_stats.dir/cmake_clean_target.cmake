file(REMOVE_RECURSE
  "libscaddar_stats.a"
)
