
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/random/distributions.cc" "src/CMakeFiles/scaddar_random.dir/random/distributions.cc.o" "gcc" "src/CMakeFiles/scaddar_random.dir/random/distributions.cc.o.d"
  "/root/repo/src/random/lcg48.cc" "src/CMakeFiles/scaddar_random.dir/random/lcg48.cc.o" "gcc" "src/CMakeFiles/scaddar_random.dir/random/lcg48.cc.o.d"
  "/root/repo/src/random/pcg32.cc" "src/CMakeFiles/scaddar_random.dir/random/pcg32.cc.o" "gcc" "src/CMakeFiles/scaddar_random.dir/random/pcg32.cc.o.d"
  "/root/repo/src/random/prng.cc" "src/CMakeFiles/scaddar_random.dir/random/prng.cc.o" "gcc" "src/CMakeFiles/scaddar_random.dir/random/prng.cc.o.d"
  "/root/repo/src/random/sequence.cc" "src/CMakeFiles/scaddar_random.dir/random/sequence.cc.o" "gcc" "src/CMakeFiles/scaddar_random.dir/random/sequence.cc.o.d"
  "/root/repo/src/random/splitmix64.cc" "src/CMakeFiles/scaddar_random.dir/random/splitmix64.cc.o" "gcc" "src/CMakeFiles/scaddar_random.dir/random/splitmix64.cc.o.d"
  "/root/repo/src/random/xoshiro256.cc" "src/CMakeFiles/scaddar_random.dir/random/xoshiro256.cc.o" "gcc" "src/CMakeFiles/scaddar_random.dir/random/xoshiro256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scaddar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
