file(REMOVE_RECURSE
  "CMakeFiles/scaddar_random.dir/random/distributions.cc.o"
  "CMakeFiles/scaddar_random.dir/random/distributions.cc.o.d"
  "CMakeFiles/scaddar_random.dir/random/lcg48.cc.o"
  "CMakeFiles/scaddar_random.dir/random/lcg48.cc.o.d"
  "CMakeFiles/scaddar_random.dir/random/pcg32.cc.o"
  "CMakeFiles/scaddar_random.dir/random/pcg32.cc.o.d"
  "CMakeFiles/scaddar_random.dir/random/prng.cc.o"
  "CMakeFiles/scaddar_random.dir/random/prng.cc.o.d"
  "CMakeFiles/scaddar_random.dir/random/sequence.cc.o"
  "CMakeFiles/scaddar_random.dir/random/sequence.cc.o.d"
  "CMakeFiles/scaddar_random.dir/random/splitmix64.cc.o"
  "CMakeFiles/scaddar_random.dir/random/splitmix64.cc.o.d"
  "CMakeFiles/scaddar_random.dir/random/xoshiro256.cc.o"
  "CMakeFiles/scaddar_random.dir/random/xoshiro256.cc.o.d"
  "libscaddar_random.a"
  "libscaddar_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaddar_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
