file(REMOVE_RECURSE
  "libscaddar_random.a"
)
