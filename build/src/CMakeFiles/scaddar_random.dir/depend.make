# Empty dependencies file for scaddar_random.
# This may be replaced when dependencies are built.
