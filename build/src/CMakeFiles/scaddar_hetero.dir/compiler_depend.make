# Empty compiler generated dependencies file for scaddar_hetero.
# This may be replaced when dependencies are built.
