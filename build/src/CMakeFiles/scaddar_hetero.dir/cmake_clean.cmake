file(REMOVE_RECURSE
  "CMakeFiles/scaddar_hetero.dir/hetero/hetero_array.cc.o"
  "CMakeFiles/scaddar_hetero.dir/hetero/hetero_array.cc.o.d"
  "CMakeFiles/scaddar_hetero.dir/hetero/logical_map.cc.o"
  "CMakeFiles/scaddar_hetero.dir/hetero/logical_map.cc.o.d"
  "libscaddar_hetero.a"
  "libscaddar_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaddar_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
