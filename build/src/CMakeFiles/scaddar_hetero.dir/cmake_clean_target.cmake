file(REMOVE_RECURSE
  "libscaddar_hetero.a"
)
