file(REMOVE_RECURSE
  "libscaddar_storage.a"
)
