# Empty dependencies file for scaddar_storage.
# This may be replaced when dependencies are built.
