file(REMOVE_RECURSE
  "CMakeFiles/scaddar_storage.dir/storage/block_store.cc.o"
  "CMakeFiles/scaddar_storage.dir/storage/block_store.cc.o.d"
  "CMakeFiles/scaddar_storage.dir/storage/catalog.cc.o"
  "CMakeFiles/scaddar_storage.dir/storage/catalog.cc.o.d"
  "CMakeFiles/scaddar_storage.dir/storage/disk.cc.o"
  "CMakeFiles/scaddar_storage.dir/storage/disk.cc.o.d"
  "CMakeFiles/scaddar_storage.dir/storage/disk_array.cc.o"
  "CMakeFiles/scaddar_storage.dir/storage/disk_array.cc.o.d"
  "CMakeFiles/scaddar_storage.dir/storage/disk_model.cc.o"
  "CMakeFiles/scaddar_storage.dir/storage/disk_model.cc.o.d"
  "libscaddar_storage.a"
  "libscaddar_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaddar_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
