# Empty dependencies file for scaddar_server.
# This may be replaced when dependencies are built.
