
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/admission.cc" "src/CMakeFiles/scaddar_server.dir/server/admission.cc.o" "gcc" "src/CMakeFiles/scaddar_server.dir/server/admission.cc.o.d"
  "/root/repo/src/server/ha_server.cc" "src/CMakeFiles/scaddar_server.dir/server/ha_server.cc.o" "gcc" "src/CMakeFiles/scaddar_server.dir/server/ha_server.cc.o.d"
  "/root/repo/src/server/migration.cc" "src/CMakeFiles/scaddar_server.dir/server/migration.cc.o" "gcc" "src/CMakeFiles/scaddar_server.dir/server/migration.cc.o.d"
  "/root/repo/src/server/scenario.cc" "src/CMakeFiles/scaddar_server.dir/server/scenario.cc.o" "gcc" "src/CMakeFiles/scaddar_server.dir/server/scenario.cc.o.d"
  "/root/repo/src/server/scheduler.cc" "src/CMakeFiles/scaddar_server.dir/server/scheduler.cc.o" "gcc" "src/CMakeFiles/scaddar_server.dir/server/scheduler.cc.o.d"
  "/root/repo/src/server/server.cc" "src/CMakeFiles/scaddar_server.dir/server/server.cc.o" "gcc" "src/CMakeFiles/scaddar_server.dir/server/server.cc.o.d"
  "/root/repo/src/server/stream.cc" "src/CMakeFiles/scaddar_server.dir/server/stream.cc.o" "gcc" "src/CMakeFiles/scaddar_server.dir/server/stream.cc.o.d"
  "/root/repo/src/server/workload.cc" "src/CMakeFiles/scaddar_server.dir/server/workload.cc.o" "gcc" "src/CMakeFiles/scaddar_server.dir/server/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scaddar_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scaddar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scaddar_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scaddar_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scaddar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scaddar_random.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scaddar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
