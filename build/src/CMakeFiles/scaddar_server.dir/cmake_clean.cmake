file(REMOVE_RECURSE
  "CMakeFiles/scaddar_server.dir/server/admission.cc.o"
  "CMakeFiles/scaddar_server.dir/server/admission.cc.o.d"
  "CMakeFiles/scaddar_server.dir/server/ha_server.cc.o"
  "CMakeFiles/scaddar_server.dir/server/ha_server.cc.o.d"
  "CMakeFiles/scaddar_server.dir/server/migration.cc.o"
  "CMakeFiles/scaddar_server.dir/server/migration.cc.o.d"
  "CMakeFiles/scaddar_server.dir/server/scenario.cc.o"
  "CMakeFiles/scaddar_server.dir/server/scenario.cc.o.d"
  "CMakeFiles/scaddar_server.dir/server/scheduler.cc.o"
  "CMakeFiles/scaddar_server.dir/server/scheduler.cc.o.d"
  "CMakeFiles/scaddar_server.dir/server/server.cc.o"
  "CMakeFiles/scaddar_server.dir/server/server.cc.o.d"
  "CMakeFiles/scaddar_server.dir/server/stream.cc.o"
  "CMakeFiles/scaddar_server.dir/server/stream.cc.o.d"
  "CMakeFiles/scaddar_server.dir/server/workload.cc.o"
  "CMakeFiles/scaddar_server.dir/server/workload.cc.o.d"
  "libscaddar_server.a"
  "libscaddar_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaddar_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
