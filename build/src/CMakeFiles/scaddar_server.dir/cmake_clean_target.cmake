file(REMOVE_RECURSE
  "libscaddar_server.a"
)
