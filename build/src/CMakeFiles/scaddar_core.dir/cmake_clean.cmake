file(REMOVE_RECURSE
  "CMakeFiles/scaddar_core.dir/core/bounds.cc.o"
  "CMakeFiles/scaddar_core.dir/core/bounds.cc.o.d"
  "CMakeFiles/scaddar_core.dir/core/compiled_log.cc.o"
  "CMakeFiles/scaddar_core.dir/core/compiled_log.cc.o.d"
  "CMakeFiles/scaddar_core.dir/core/governor.cc.o"
  "CMakeFiles/scaddar_core.dir/core/governor.cc.o.d"
  "CMakeFiles/scaddar_core.dir/core/mapper.cc.o"
  "CMakeFiles/scaddar_core.dir/core/mapper.cc.o.d"
  "CMakeFiles/scaddar_core.dir/core/op_log.cc.o"
  "CMakeFiles/scaddar_core.dir/core/op_log.cc.o.d"
  "CMakeFiles/scaddar_core.dir/core/redistribution.cc.o"
  "CMakeFiles/scaddar_core.dir/core/redistribution.cc.o.d"
  "CMakeFiles/scaddar_core.dir/core/remap.cc.o"
  "CMakeFiles/scaddar_core.dir/core/remap.cc.o.d"
  "CMakeFiles/scaddar_core.dir/core/scaling_op.cc.o"
  "CMakeFiles/scaddar_core.dir/core/scaling_op.cc.o.d"
  "CMakeFiles/scaddar_core.dir/core/shared_placement.cc.o"
  "CMakeFiles/scaddar_core.dir/core/shared_placement.cc.o.d"
  "libscaddar_core.a"
  "libscaddar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaddar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
