
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bounds.cc" "src/CMakeFiles/scaddar_core.dir/core/bounds.cc.o" "gcc" "src/CMakeFiles/scaddar_core.dir/core/bounds.cc.o.d"
  "/root/repo/src/core/compiled_log.cc" "src/CMakeFiles/scaddar_core.dir/core/compiled_log.cc.o" "gcc" "src/CMakeFiles/scaddar_core.dir/core/compiled_log.cc.o.d"
  "/root/repo/src/core/governor.cc" "src/CMakeFiles/scaddar_core.dir/core/governor.cc.o" "gcc" "src/CMakeFiles/scaddar_core.dir/core/governor.cc.o.d"
  "/root/repo/src/core/mapper.cc" "src/CMakeFiles/scaddar_core.dir/core/mapper.cc.o" "gcc" "src/CMakeFiles/scaddar_core.dir/core/mapper.cc.o.d"
  "/root/repo/src/core/op_log.cc" "src/CMakeFiles/scaddar_core.dir/core/op_log.cc.o" "gcc" "src/CMakeFiles/scaddar_core.dir/core/op_log.cc.o.d"
  "/root/repo/src/core/redistribution.cc" "src/CMakeFiles/scaddar_core.dir/core/redistribution.cc.o" "gcc" "src/CMakeFiles/scaddar_core.dir/core/redistribution.cc.o.d"
  "/root/repo/src/core/remap.cc" "src/CMakeFiles/scaddar_core.dir/core/remap.cc.o" "gcc" "src/CMakeFiles/scaddar_core.dir/core/remap.cc.o.d"
  "/root/repo/src/core/scaling_op.cc" "src/CMakeFiles/scaddar_core.dir/core/scaling_op.cc.o" "gcc" "src/CMakeFiles/scaddar_core.dir/core/scaling_op.cc.o.d"
  "/root/repo/src/core/shared_placement.cc" "src/CMakeFiles/scaddar_core.dir/core/shared_placement.cc.o" "gcc" "src/CMakeFiles/scaddar_core.dir/core/shared_placement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scaddar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scaddar_random.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scaddar_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
