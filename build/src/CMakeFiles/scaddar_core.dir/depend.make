# Empty dependencies file for scaddar_core.
# This may be replaced when dependencies are built.
