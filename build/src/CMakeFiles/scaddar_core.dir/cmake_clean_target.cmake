file(REMOVE_RECURSE
  "libscaddar_core.a"
)
