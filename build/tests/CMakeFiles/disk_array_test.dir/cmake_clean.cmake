file(REMOVE_RECURSE
  "CMakeFiles/disk_array_test.dir/disk_array_test.cc.o"
  "CMakeFiles/disk_array_test.dir/disk_array_test.cc.o.d"
  "disk_array_test"
  "disk_array_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
