file(REMOVE_RECURSE
  "CMakeFiles/movement_test.dir/movement_test.cc.o"
  "CMakeFiles/movement_test.dir/movement_test.cc.o.d"
  "movement_test"
  "movement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
