# Empty compiler generated dependencies file for movement_test.
# This may be replaced when dependencies are built.
