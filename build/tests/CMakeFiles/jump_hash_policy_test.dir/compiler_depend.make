# Empty compiler generated dependencies file for jump_hash_policy_test.
# This may be replaced when dependencies are built.
