file(REMOVE_RECURSE
  "CMakeFiles/jump_hash_policy_test.dir/jump_hash_policy_test.cc.o"
  "CMakeFiles/jump_hash_policy_test.dir/jump_hash_policy_test.cc.o.d"
  "jump_hash_policy_test"
  "jump_hash_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jump_hash_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
