file(REMOVE_RECURSE
  "CMakeFiles/ha_server_test.dir/ha_server_test.cc.o"
  "CMakeFiles/ha_server_test.dir/ha_server_test.cc.o.d"
  "ha_server_test"
  "ha_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ha_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
