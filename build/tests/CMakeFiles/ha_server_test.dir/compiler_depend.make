# Empty compiler generated dependencies file for ha_server_test.
# This may be replaced when dependencies are built.
