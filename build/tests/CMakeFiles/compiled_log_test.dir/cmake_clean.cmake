file(REMOVE_RECURSE
  "CMakeFiles/compiled_log_test.dir/compiled_log_test.cc.o"
  "CMakeFiles/compiled_log_test.dir/compiled_log_test.cc.o.d"
  "compiled_log_test"
  "compiled_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiled_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
