file(REMOVE_RECURSE
  "CMakeFiles/shared_placement_test.dir/shared_placement_test.cc.o"
  "CMakeFiles/shared_placement_test.dir/shared_placement_test.cc.o.d"
  "shared_placement_test"
  "shared_placement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_placement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
