file(REMOVE_RECURSE
  "CMakeFiles/redistribution_test.dir/redistribution_test.cc.o"
  "CMakeFiles/redistribution_test.dir/redistribution_test.cc.o.d"
  "redistribution_test"
  "redistribution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redistribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
