# Empty compiler generated dependencies file for load_metrics_test.
# This may be replaced when dependencies are built.
