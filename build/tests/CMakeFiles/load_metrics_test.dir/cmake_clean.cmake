file(REMOVE_RECURSE
  "CMakeFiles/load_metrics_test.dir/load_metrics_test.cc.o"
  "CMakeFiles/load_metrics_test.dir/load_metrics_test.cc.o.d"
  "load_metrics_test"
  "load_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
