file(REMOVE_RECURSE
  "CMakeFiles/randtests_test.dir/randtests_test.cc.o"
  "CMakeFiles/randtests_test.dir/randtests_test.cc.o.d"
  "randtests_test"
  "randtests_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randtests_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
