# Empty dependencies file for randtests_test.
# This may be replaced when dependencies are built.
