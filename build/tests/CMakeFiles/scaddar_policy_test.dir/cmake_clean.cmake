file(REMOVE_RECURSE
  "CMakeFiles/scaddar_policy_test.dir/scaddar_policy_test.cc.o"
  "CMakeFiles/scaddar_policy_test.dir/scaddar_policy_test.cc.o.d"
  "scaddar_policy_test"
  "scaddar_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaddar_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
