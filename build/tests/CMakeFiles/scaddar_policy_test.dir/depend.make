# Empty dependencies file for scaddar_policy_test.
# This may be replaced when dependencies are built.
