file(REMOVE_RECURSE
  "CMakeFiles/admission_workload_test.dir/admission_workload_test.cc.o"
  "CMakeFiles/admission_workload_test.dir/admission_workload_test.cc.o.d"
  "admission_workload_test"
  "admission_workload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admission_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
