# Empty compiler generated dependencies file for scaling_op_test.
# This may be replaced when dependencies are built.
