file(REMOVE_RECURSE
  "CMakeFiles/scaling_op_test.dir/scaling_op_test.cc.o"
  "CMakeFiles/scaling_op_test.dir/scaling_op_test.cc.o.d"
  "scaling_op_test"
  "scaling_op_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_op_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
