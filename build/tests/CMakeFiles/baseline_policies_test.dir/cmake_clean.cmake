file(REMOVE_RECURSE
  "CMakeFiles/baseline_policies_test.dir/baseline_policies_test.cc.o"
  "CMakeFiles/baseline_policies_test.dir/baseline_policies_test.cc.o.d"
  "baseline_policies_test"
  "baseline_policies_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
