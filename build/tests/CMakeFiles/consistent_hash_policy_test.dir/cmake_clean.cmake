file(REMOVE_RECURSE
  "CMakeFiles/consistent_hash_policy_test.dir/consistent_hash_policy_test.cc.o"
  "CMakeFiles/consistent_hash_policy_test.dir/consistent_hash_policy_test.cc.o.d"
  "consistent_hash_policy_test"
  "consistent_hash_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistent_hash_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
