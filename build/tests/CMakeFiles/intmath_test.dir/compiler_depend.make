# Empty compiler generated dependencies file for intmath_test.
# This may be replaced when dependencies are built.
