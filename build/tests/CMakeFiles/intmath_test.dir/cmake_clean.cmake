file(REMOVE_RECURSE
  "CMakeFiles/intmath_test.dir/intmath_test.cc.o"
  "CMakeFiles/intmath_test.dir/intmath_test.cc.o.d"
  "intmath_test"
  "intmath_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intmath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
