file(REMOVE_RECURSE
  "CMakeFiles/bench_movement.dir/bench_movement.cc.o"
  "CMakeFiles/bench_movement.dir/bench_movement.cc.o.d"
  "bench_movement"
  "bench_movement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_movement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
