# Empty dependencies file for bench_movement.
# This may be replaced when dependencies are built.
