file(REMOVE_RECURSE
  "CMakeFiles/bench_remap_throughput.dir/bench_remap_throughput.cc.o"
  "CMakeFiles/bench_remap_throughput.dir/bench_remap_throughput.cc.o.d"
  "bench_remap_throughput"
  "bench_remap_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_remap_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
