# Empty compiler generated dependencies file for bench_remap_throughput.
# This may be replaced when dependencies are built.
