# Empty dependencies file for bench_online_scaling.
# This may be replaced when dependencies are built.
