file(REMOVE_RECURSE
  "CMakeFiles/bench_online_scaling.dir/bench_online_scaling.cc.o"
  "CMakeFiles/bench_online_scaling.dir/bench_online_scaling.cc.o.d"
  "bench_online_scaling"
  "bench_online_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
