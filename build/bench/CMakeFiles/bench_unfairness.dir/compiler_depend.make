# Empty compiler generated dependencies file for bench_unfairness.
# This may be replaced when dependencies are built.
