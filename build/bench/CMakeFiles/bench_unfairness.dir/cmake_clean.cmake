file(REMOVE_RECURSE
  "CMakeFiles/bench_unfairness.dir/bench_unfairness.cc.o"
  "CMakeFiles/bench_unfairness.dir/bench_unfairness.cc.o.d"
  "bench_unfairness"
  "bench_unfairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unfairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
