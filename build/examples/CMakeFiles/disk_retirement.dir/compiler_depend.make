# Empty compiler generated dependencies file for disk_retirement.
# This may be replaced when dependencies are built.
