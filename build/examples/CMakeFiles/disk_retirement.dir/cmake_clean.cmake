file(REMOVE_RECURSE
  "CMakeFiles/disk_retirement.dir/disk_retirement.cpp.o"
  "CMakeFiles/disk_retirement.dir/disk_retirement.cpp.o.d"
  "disk_retirement"
  "disk_retirement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_retirement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
