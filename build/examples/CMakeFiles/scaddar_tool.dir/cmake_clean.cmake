file(REMOVE_RECURSE
  "CMakeFiles/scaddar_tool.dir/scaddar_tool.cpp.o"
  "CMakeFiles/scaddar_tool.dir/scaddar_tool.cpp.o.d"
  "scaddar_tool"
  "scaddar_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaddar_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
