
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/scaddar_tool.cpp" "examples/CMakeFiles/scaddar_tool.dir/scaddar_tool.cpp.o" "gcc" "examples/CMakeFiles/scaddar_tool.dir/scaddar_tool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scaddar_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scaddar_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scaddar_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scaddar_hetero.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scaddar_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scaddar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scaddar_random.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scaddar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scaddar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
