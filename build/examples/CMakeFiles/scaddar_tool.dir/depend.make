# Empty dependencies file for scaddar_tool.
# This may be replaced when dependencies are built.
