# Empty dependencies file for vod_server.
# This may be replaced when dependencies are built.
