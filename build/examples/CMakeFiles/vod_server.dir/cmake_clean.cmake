file(REMOVE_RECURSE
  "CMakeFiles/vod_server.dir/vod_server.cpp.o"
  "CMakeFiles/vod_server.dir/vod_server.cpp.o.d"
  "vod_server"
  "vod_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
