# Empty compiler generated dependencies file for hetero_farm.
# This may be replaced when dependencies are built.
