file(REMOVE_RECURSE
  "CMakeFiles/hetero_farm.dir/hetero_farm.cpp.o"
  "CMakeFiles/hetero_farm.dir/hetero_farm.cpp.o.d"
  "hetero_farm"
  "hetero_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
